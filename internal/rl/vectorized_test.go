package rl

import (
	"math"
	"math/rand"
	"testing"

	"vmr2l/internal/policy"
	"vmr2l/internal/sim"
)

// TestVectorizedCollectionDeterministic pins the vectorized stepper: two
// trainers with the same seed collect identical batches, and the batch meets
// the step quota with well-formed episode boundaries.
func TestVectorizedCollectionDeterministic(t *testing.T) {
	maps := trainMaps(3)
	envCfg := sim.DefaultConfig(4)
	cfg := smallCfg()
	cfg.Envs = 4
	var batches [2][]transition
	for trial := 0; trial < 2; trial++ {
		tr := NewTrainer(smallModel(policy.TwoStage), cfg)
		batch, _ := tr.collect(maps, envCfg)
		batches[trial] = batch
	}
	a, b := batches[0], batches[1]
	if len(a) != len(b) {
		t.Fatalf("batch sizes differ: %d vs %d", len(a), len(b))
	}
	if len(a) < cfg.RolloutSteps {
		t.Fatalf("collected %d < RolloutSteps %d", len(a), cfg.RolloutSteps)
	}
	for i := range a {
		if a[i].state.VM != b[i].state.VM || a[i].state.PM != b[i].state.PM ||
			a[i].reward != b[i].reward || a[i].logp != b[i].logp || a[i].epEnd != b[i].epEnd {
			t.Fatalf("transition %d differs between runs", i)
		}
	}
	if !a[len(a)-1].epEnd {
		t.Fatal("last transition does not close its episode")
	}
}

// TestVectorizedUpdateTrains runs full PPO updates through the vectorized
// stepper for every action mode: finite stats, no panics from the batched
// path feeding Evaluate.
func TestVectorizedUpdateTrains(t *testing.T) {
	maps := trainMaps(3)
	for _, mode := range []policy.ActionMode{policy.TwoStage, policy.Penalty, policy.FullMask} {
		cfg := smallCfg()
		cfg.Envs = 3
		tr := NewTrainer(smallModel(mode), cfg)
		st, err := tr.Update(maps, sim.DefaultConfig(4), 0)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		for name, v := range map[string]float64{
			"policy": st.PolicyLoss, "value": st.ValueLoss, "entropy": st.Entropy,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("mode %v: %s not finite: %v", mode, name, v)
			}
		}
	}
}

// TestEvalFRBatchedMatchesSequential pins the batched EvalFR against a
// hand-rolled sequential greedy rollout per mapping.
func TestEvalFRBatchedMatchesSequential(t *testing.T) {
	m := smallModel(policy.TwoStage)
	maps := trainMaps(4)
	envCfg := sim.DefaultConfig(4)
	got := EvalFR(m, maps, envCfg)
	total := 0.0
	for _, init := range maps {
		env := sim.New(init, envCfg)
		ic := policy.NewInferCtx()
		for !env.Done() {
			vm, pm, err := m.Infer(ic, env, rand.New(rand.NewSource(1)), policy.SampleOpts{Greedy: true})
			if err != nil {
				break
			}
			if _, _, err := env.Step(vm, pm); err != nil {
				break
			}
		}
		total += env.Value()
	}
	want := total / float64(len(maps))
	if got != want {
		t.Fatalf("batched EvalFR %v != sequential %v", got, want)
	}
}
