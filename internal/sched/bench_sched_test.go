package sched

import (
	"math/rand"
	"testing"

	"vmr2l/internal/cluster"
	"vmr2l/internal/trace"
)

// BenchmarkBestFit measures one best-fit placement decision on a
// medium-small cluster (28 PMs) — the per-arrival cost the Dynamics engine
// pays for every simulated VM request.
func BenchmarkBestFit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := trace.MustProfile("medium-small").GenerateMapping(rng)
	base.FragRate(cluster.DefaultFragCores) // warm aggregates
	c := base.Clone()
	t := cluster.StandardTypes[1] // xlarge
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := c.AddVM(t)
		if BestFit(c, id) >= 0 {
			if err := c.Remove(id); err != nil {
				b.Fatal(err)
			}
		}
		c.VMs = c.VMs[:len(c.VMs)-1]
	}
}
