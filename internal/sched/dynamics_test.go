package sched

import (
	"math/rand"
	"testing"

	"vmr2l/internal/cluster"
	"vmr2l/internal/trace"
)

// TestDynamicsAdvanceKeepsClusterValid is the dynamics safety property: any
// Advance sequence leaves the cluster internally consistent (usage matches
// hosted VMs, no capacity exceeded, aggregates in sync) and never violates
// anti-affinity.
func TestDynamicsAdvanceKeepsClusterValid(t *testing.T) {
	mix := []cluster.VMType{
		cluster.StandardTypes[0], cluster.StandardTypes[1],
		cluster.StandardTypes[2], cluster.StandardTypes[4], // incl. a double-NUMA flavor
	}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := trace.MustProfile("tiny").GenerateMapping(rng)
		trace.AttachAffinity(c, 3, rng)
		c.FragRate(cluster.DefaultFragCores) // warm aggregates so Validate cross-checks them
		d := NewDynamics(c, rng, mix, Diurnal(3+float64(seed)))
		if seed%3 == 1 {
			d.SetArriveFrac(0) // drain
		} else if seed%3 == 2 {
			d.SetArriveFrac(0.8)
		}
		// Random advance sequence: mixed chunk sizes, interleaved validation.
		total := 0
		for _, chunk := range []int{1, 7, 0, 23, 60, 5} {
			st := d.Advance(chunk)
			total += chunk
			if st.Minutes != chunk {
				t.Fatalf("seed %d: Advance(%d) reported %d minutes", seed, chunk, st.Minutes)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("seed %d after %d minutes: %v", seed, total, err)
			}
		}
		if d.Minute() != total {
			t.Fatalf("seed %d: clock %d != advanced %d", seed, d.Minute(), total)
		}
		st := d.Stats()
		// Events also counts exits resolved against an emptied cluster (the
		// drain seeds hit this), so >= rather than ==.
		if st.Events < st.Arrivals+st.Rejected+st.Exits {
			t.Fatalf("seed %d: events %d < arrivals %d + rejected %d + exits %d",
				seed, st.Events, st.Arrivals, st.Rejected, st.Exits)
		}
	}
}

func TestDynamicsDrainOnlyExits(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := trace.MustProfile("tiny").GenerateMapping(rng)
	before := c.CountPlaced()
	d := NewDynamics(c, rng, []cluster.VMType{cluster.StandardTypes[0]}, Constant(5))
	d.SetArriveFrac(0)
	st := d.Advance(30)
	if st.Arrivals != 0 || st.Rejected != 0 {
		t.Fatalf("drain produced arrivals: %+v", st)
	}
	if st.Exits == 0 {
		t.Fatal("drain produced no exits")
	}
	if got := c.CountPlaced(); got != before-st.Exits {
		t.Fatalf("placed %d, want %d - %d", got, before, st.Exits)
	}
}

func TestDynamicsBurstRate(t *testing.T) {
	r := Burst(1, 20, 10, 5)
	if r(9) != 1 || r(15) != 1 {
		t.Fatal("base rate outside burst window wrong")
	}
	if r(10) != 20 || r(14) != 20 {
		t.Fatal("burst rate inside window wrong")
	}
}

func TestDynamicsExplicitEvents(t *testing.T) {
	c := cluster.New(2, cluster.PMType{CPUPerNuma: 32, MemPerNuma: 64})
	d := NewDynamics(c, rand.New(rand.NewSource(1)), nil, nil)
	pm := d.Arrive(cluster.StandardTypes[1])
	if pm < 0 {
		t.Fatal("arrive failed on empty cluster")
	}
	if !d.Exit(0) {
		t.Fatal("exit of placed vm failed")
	}
	if d.Exit(0) {
		t.Fatal("exit of unplaced vm succeeded")
	}
	if d.Exit(99) {
		t.Fatal("exit of unknown vm succeeded")
	}
	st := d.Stats()
	if st.Arrivals != 1 || st.Exits != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestDynamicsReuseSlotsBoundsGrowth pins the long-lived-cluster contract:
// with SetReuseSlots, churn recycles dead VM records instead of growing
// c.VMs forever, and the cluster stays valid throughout.
func TestDynamicsReuseSlotsBoundsGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := trace.MustProfile("tiny").GenerateMapping(rng)
	mix := []cluster.VMType{cluster.StandardTypes[0], cluster.StandardTypes[2]}
	d := NewDynamics(c, rng, mix, Constant(6))
	d.SetReuseSlots(true)
	before := len(c.VMs)
	st := d.Advance(240)
	if st.Arrivals == 0 || st.Exits == 0 {
		t.Fatalf("no churn: %+v", st)
	}
	// Growth is bounded by the peak net population, not cumulative arrivals.
	if grown := len(c.VMs) - before; grown >= st.Arrivals {
		t.Fatalf("VMs grew by %d over %d arrivals — slots not reused", grown, st.Arrivals)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Without reuse, every arrival appends (the Replay-compatible default).
	rng2 := rand.New(rand.NewSource(6))
	c2 := trace.MustProfile("tiny").GenerateMapping(rng2)
	d2 := NewDynamics(c2, rng2, mix, Constant(6))
	before2 := len(c2.VMs)
	st2 := d2.Advance(240)
	if grown := len(c2.VMs) - before2; grown != st2.Arrivals+st2.Rejected {
		t.Fatalf("append mode grew %d, want %d", grown, st2.Arrivals+st2.Rejected)
	}
}

// oldReplay is the pre-Dynamics event-slice implementation, kept verbatim as
// the regression oracle for the Replay compatibility wrapper.
func oldReplay(c *cluster.Cluster, events []Event, rng *rand.Rand) (arrivals, exits int) {
	for _, ev := range events {
		if ev.Arrive {
			id := c.AddVM(ev.Type)
			if BestFit(c, id) >= 0 {
				arrivals++
			}
		} else {
			var placed []int
			for i := range c.VMs {
				if c.VMs[i].Placed() {
					placed = append(placed, i)
				}
			}
			if len(placed) == 0 {
				continue
			}
			id := placed[rng.Intn(len(placed))]
			if err := c.Remove(id); err == nil {
				exits++
			}
		}
	}
	return arrivals, exits
}

// TestReplayMatchesOldEventSliceSemantics pins the compatibility wrapper to
// the old semantics bit for bit: same events, same rng seed, identical final
// cluster state and counts.
func TestReplayMatchesOldEventSliceSemantics(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		gen := rand.New(rand.NewSource(seed))
		base := trace.MustProfile("tiny").GenerateMapping(gen)
		mix := []cluster.VMType{cluster.StandardTypes[0], cluster.StandardTypes[2], cluster.StandardTypes[5]}
		events := Stream(gen, 90, 5, mix)

		oldC, newC := base.Clone(), base.Clone()
		oldArr, oldEx := oldReplay(oldC, events, rand.New(rand.NewSource(seed+100)))
		newArr, newEx := Replay(newC, events, rand.New(rand.NewSource(seed+100)))

		if oldArr != newArr || oldEx != newEx {
			t.Fatalf("seed %d: counts (%d,%d) != old (%d,%d)", seed, newArr, newEx, oldArr, oldEx)
		}
		if len(oldC.VMs) != len(newC.VMs) {
			t.Fatalf("seed %d: vm counts differ: %d vs %d", seed, len(newC.VMs), len(oldC.VMs))
		}
		for i := range oldC.VMs {
			if oldC.VMs[i].PM != newC.VMs[i].PM || oldC.VMs[i].Numa != newC.VMs[i].Numa {
				t.Fatalf("seed %d: vm %d placed at (%d,%d), old semantics (%d,%d)",
					seed, i, newC.VMs[i].PM, newC.VMs[i].Numa, oldC.VMs[i].PM, oldC.VMs[i].Numa)
			}
		}
		if err := newC.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestBestFitMatchesProbeScan pins the O(1) PlaceFragDelta scoring to the
// old Place/probe/Remove scan on random clusters.
func TestBestFitMatchesProbeScan(t *testing.T) {
	probeBestFit := func(c *cluster.Cluster, id int) int {
		bestPM, bestNuma, bestScore := -1, -1, int(^uint(0)>>1)*-1-1
		for pm := range c.PMs {
			numa := c.BestNuma(id, pm, cluster.DefaultFragCores)
			if numa < 0 {
				continue
			}
			if c.AntiAffinity && !canHostUnplaced(c, id, pm) {
				continue
			}
			before := c.PMs[pm].Fragment(cluster.DefaultFragCores)
			if err := c.Place(id, pm, numa); err != nil {
				continue
			}
			after := c.PMs[pm].Fragment(cluster.DefaultFragCores)
			if err := c.Remove(id); err != nil {
				t.Fatal(err)
			}
			if score := before - after; score > bestScore {
				bestPM, bestNuma, bestScore = pm, numa, score
			}
		}
		if bestPM < 0 {
			return -1
		}
		if err := c.Place(id, bestPM, bestNuma); err != nil {
			return -1
		}
		return bestPM
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		base := trace.MustProfile("tiny").GenerateMapping(rng)
		if trial%2 == 1 {
			trace.AttachAffinity(base, 4, rng)
		}
		for _, vt := range cluster.StandardTypes {
			a, b := base.Clone(), base.Clone()
			got := BestFit(a, a.AddVM(vt))
			want := probeBestFit(b, b.AddVM(vt))
			if got != want {
				t.Fatalf("trial %d type %s: BestFit=%d, probe scan=%d", trial, vt.Name, got, want)
			}
		}
	}
}
