package sched

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"vmr2l/internal/cluster"
)

// TestCountedSourceMatchesStdlib: wrapping must be observationally free —
// the counted stream is the stdlib stream.
func TestCountedSourceMatchesStdlib(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		want := rand.New(rand.NewSource(seed))
		src := NewCountedSource(seed)
		got := rand.New(src)
		for i := 0; i < 200; i++ {
			switch i % 4 {
			case 0:
				if a, b := want.Float64(), got.Float64(); math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, b, a)
				}
			case 1:
				if a, b := want.Intn(97), got.Intn(97); a != b {
					t.Fatalf("seed %d draw %d: Intn %d != %d", seed, i, b, a)
				}
			case 2:
				if a, b := want.Uint64(), got.Uint64(); a != b {
					t.Fatalf("seed %d draw %d: Uint64 %d != %d", seed, i, b, a)
				}
			case 3:
				if a, b := want.Int63(), got.Int63(); a != b {
					t.Fatalf("seed %d draw %d: Int63 %d != %d", seed, i, b, a)
				}
			}
		}
		if src.Draws() == 0 {
			t.Fatalf("seed %d: no draws counted", seed)
		}
	}
}

// TestCountedSourceSkipRestoresPosition: a fresh source skipped to a recorded
// position continues the identical stream.
func TestCountedSourceSkipRestoresPosition(t *testing.T) {
	src := NewCountedSource(99)
	rng := rand.New(src)
	for i := 0; i < 137; i++ {
		rng.Float64()
		rng.Intn(13)
	}
	pos := src.Draws()

	restored := NewCountedSource(src.Seed64())
	restored.Skip(pos)
	if restored.Draws() != pos {
		t.Fatalf("draws after skip = %d, want %d", restored.Draws(), pos)
	}
	rng2 := rand.New(restored)
	for i := 0; i < 100; i++ {
		a, b := rng.Float64(), rng2.Float64()
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("draw %d after restore: %v != %v", i, b, a)
		}
	}
}

// buildStateTestDynamics builds a failure-enabled engine over a populated
// two-PM cluster driven by a counted source.
func buildStateTestDynamics(seed int64) (*Dynamics, *CountedSource) {
	src := NewCountedSource(seed)
	rng := rand.New(src)
	c := cluster.New(4, cluster.PMSmall)
	for i := 0; i < 24; i++ {
		id := c.AddVM(cluster.StandardTypes[i%3])
		BestFit(c, id)
	}
	d := NewDynamics(c, rng, cluster.StandardTypes, Constant(3))
	d.SetReuseSlots(true)
	d.SetFailures(FailureSpec{
		CrashRate:     0.15,
		RecoverAfter:  8,
		EvacDeadline:  5,
		EvacPerMinute: 2,
	})
	return d, src
}

// restoreFromExport rebuilds an engine from an exported state, the way the
// service snapshot path does: cloned cluster, fresh fast-forwarded source,
// same constructor arguments, then ImportState.
func restoreFromExport(t *testing.T, d *Dynamics, src *CountedSource) *Dynamics {
	t.Helper()
	st := d.ExportState()
	c2 := d.Cluster().Clone()
	src2 := NewCountedSource(src.Seed64())
	src2.Skip(src.Draws())
	d2 := NewDynamics(c2, rand.New(src2), d.Mix(), Constant(3))
	if spec, on := d.Failures(); on {
		d2.SetFailures(spec)
	}
	if err := d2.ImportState(st); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	return d2
}

// TestExportImportBitIdenticalAdvance is the core durability invariant:
// export mid-run (with pending evacuations and crashed PMs in play), restore
// onto a cloned cluster, and every subsequent Advance must match the
// uninterrupted engine exactly — stats, clock, RNG position, and the full
// cluster state down to fragment-rate float bits.
func TestExportImportBitIdenticalAdvance(t *testing.T) {
	for _, seed := range []int64{1, 5, 23, 77} {
		d, src := buildStateTestDynamics(seed)
		d.Advance(17) // run into failure territory
		d.Crash(0)    // guarantee a mid-evacuation snapshot state
		d2 := restoreFromExport(t, d, src)

		if !reflect.DeepEqual(d.ExportState(), d2.ExportState()) {
			t.Fatalf("seed %d: restored state differs immediately after import", seed)
		}
		for step := 0; step < 12; step++ {
			s1 := d.Advance(3)
			s2 := d2.Advance(3)
			if s1 != s2 {
				t.Fatalf("seed %d step %d: stats diverged: %+v != %+v", seed, step, s2, s1)
			}
			c1, c2 := d.Cluster(), d2.Cluster()
			if a, b := c1.FragRate(cluster.DefaultFragCores), c2.FragRate(cluster.DefaultFragCores); math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("seed %d step %d: FR diverged: %v != %v", seed, step, b, a)
			}
			if !reflect.DeepEqual(c1.VMs, c2.VMs) {
				t.Fatalf("seed %d step %d: VM records diverged", seed, step)
			}
			for pm := range c1.PMs {
				if !reflect.DeepEqual(c1.PMs[pm].VMs, c2.PMs[pm].VMs) {
					t.Fatalf("seed %d step %d: pm %d hosted-VM order diverged: %v != %v",
						seed, step, pm, c2.PMs[pm].VMs, c1.PMs[pm].VMs)
				}
				if c1.PMs[pm].Health != c2.PMs[pm].Health {
					t.Fatalf("seed %d step %d: pm %d health diverged", seed, step, pm)
				}
			}
			if err := d2.CheckFailureInvariants(); err != nil {
				t.Fatalf("seed %d step %d: restored engine: %v", seed, step, err)
			}
		}
	}
}

// TestImportStateValidates: corrupt references must be refused, not crash
// later.
func TestImportStateValidates(t *testing.T) {
	d, _ := buildStateTestDynamics(3)
	d.Advance(5)
	st := d.ExportState()

	bad := st
	bad.FreeIDs = []int{99999}
	if err := d.ImportState(bad); err == nil {
		t.Fatal("out-of-range free id accepted")
	}
	bad = st
	bad.Fail = &FailState{Evacs: []Evacuation{{VM: -1, PM: 0, Deadline: 3}}}
	if err := d.ImportState(bad); err == nil {
		t.Fatal("out-of-range evacuation vm accepted")
	}
	bad = st
	bad.Fail = &FailState{Evacs: []Evacuation{{VM: 0, PM: 12345, Deadline: 3}}}
	if err := d.ImportState(bad); err == nil {
		t.Fatal("out-of-range evacuation pm accepted")
	}
}
