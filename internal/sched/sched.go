// Package sched implements the VM scheduling (VMS) half of the paper's
// control plane: the latency-critical best-fit placement that handles new VM
// requests throughout the day (paper section 1), and the Dynamics engine
// that evolves a live cluster through the diurnal arrival/exit churn of
// Fig. 1 while a rescheduling solution is being computed (Fig. 5).
//
// Dynamics is the primary interface: it owns a minute clock and applies
// Poisson arrivals (placed by BestFit) and uniform-random exits in place as
// the clock is advanced. Stream and Replay are retained as thin
// compatibility wrappers over the same event application logic for callers
// that want a precomputed event slice.
//
// # Failure dynamics
//
// Layered over the churn, Dynamics models PM failure (failures.go): Poisson
// crashes (Up -> Down), rolling maintenance drains (Up -> Draining), and
// recovery, driven by a FailureSpec or injected manually with
// Crash/Drain/Recover (and at scenario level by a ChaosInjector). Every VM
// on a failed PM becomes evacuation-pending under a deadline; each minute
// the engine migrates pending VMs to the best-fit Up PM at a bounded rate,
// and a VM still on a Down PM at its deadline is removed and counted as
// lost — never silently dropped.
//
// The accounting bar is the no-silent-loss identity checked by
// CheckFailureInvariants: every VM ever marked evacuation-pending resolves
// into exactly one of Stats.Evacuated (migrated off in time),
// Stats.EvacCancelled (PM recovered first, or the VM exited/moved through
// normal churn), or Stats.EvacLost (deadline hit with no Up PM able to host
// it) — or is still pending within its deadline. The serving layers reuse
// the same discipline: solver.RepairStats counts forced evacuations and
// stranded VMs per repaired plan, serve.Stats counts shed waves, and the
// service's /v2/stats counts shed jobs and budget-dropped migrations.
package sched

import (
	"math"
	"math/rand"

	"vmr2l/internal/cluster"
)

// BestFit places VM id using ByteDance's production VMS rule: among PMs that
// can host the VM, choose the one with the largest drop in 16-core fragment
// from adding it (paper section 1). Returns the chosen PM or -1 if none fits.
//
// Each candidate is scored with cluster.PlaceFragDelta — O(1) arithmetic on
// the would-be destination NUMA — instead of the old Place/probe/Remove
// round-trip, so the scan never touches the cluster's incremental aggregates
// until the single final Place.
func BestFit(c *cluster.Cluster, id int) int {
	bestPM, bestNuma, bestScore := -1, -1, math.MinInt
	for pm := range c.PMs {
		if c.PMs[pm].Health != cluster.Up {
			// Draining and Down PMs take no new placements; a crashed PM
			// with freed capacity must never attract the VMs being
			// evacuated from its neighbors.
			continue
		}
		numa := c.BestNuma(id, pm, cluster.DefaultFragCores)
		if numa < 0 {
			continue
		}
		if c.AntiAffinity && !canHostUnplaced(c, id, pm) {
			continue
		}
		if score := c.PlaceFragDelta(id, pm, numa, cluster.DefaultFragCores); score > bestScore {
			bestPM, bestNuma, bestScore = pm, numa, score
		}
	}
	if bestPM < 0 {
		return -1
	}
	if err := c.Place(id, bestPM, bestNuma); err != nil {
		return -1
	}
	return bestPM
}

// canHostUnplaced mirrors Cluster.CanHost for a VM that is not yet placed
// (CanHost's "not the current PM" check is vacuous there, but the affinity
// check is not exported separately). Like CanHost, it accepts only Up PMs.
func canHostUnplaced(c *cluster.Cluster, id, pm int) bool {
	if c.PMs[pm].Health != cluster.Up {
		return false
	}
	v := c.VMs[id]
	if v.Service < 0 {
		return true
	}
	for _, other := range c.PMs[pm].VMs {
		if c.VMs[other].Service == v.Service {
			return false
		}
	}
	return true
}

// Event is one VM arrival or exit in a replayed stream. An exit does not
// name a VM: the stream is generated independently of any cluster, so Replay
// resolves each exit against the VMs actually placed at replay time by
// sampling uniformly from them.
type Event struct {
	Minute int
	// Arrive is true for a new VM request, false for an exit.
	Arrive bool
	// Type is the flavor of an arriving VM.
	Type cluster.VMType
}

// DiurnalRate returns the expected VM changes per minute at the given minute
// of day, reproducing the shape of paper Fig. 1: a midday peak (deploy hours)
// and an early-morning trough where VMR runs. peak scales the curve.
func DiurnalRate(minute int, peak float64) float64 {
	// Cosine day-cycle with trough at 04:00 and peak at 16:00.
	phase := 2 * math.Pi * (float64(minute)/1440.0 - 4.0/24.0)
	base := 0.55 - 0.45*math.Cos(phase)
	return peak * base
}

// Stream generates minutes' worth of arrival/exit events against the mix of
// the given profile-like type weights. The arrival and exit rates follow the
// same diurnal curve (steady-state population), with Poisson-like counts.
func Stream(rng *rand.Rand, minutes int, peak float64, mix []cluster.VMType) []Event {
	var events []Event
	for m := 0; m < minutes; m++ {
		rate := DiurnalRate(m, peak)
		n := poisson(rng, rate)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.5 {
				events = append(events, Event{Minute: m, Arrive: true, Type: mix[rng.Intn(len(mix))]})
			} else {
				events = append(events, Event{Minute: m, Arrive: false})
			}
		}
	}
	return events
}

func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for p > l {
		k++
		p *= rng.Float64()
	}
	return k - 1
}

// Replay applies a precomputed event slice to the cluster: arrivals are
// placed by BestFit (and dropped when no PM fits), exits remove a uniformly
// random placed VM. It mutates c in place and returns counts of applied
// arrivals and exits.
//
// Replay is a compatibility wrapper over the Dynamics engine: it feeds each
// event through the same apply logic Advance uses, consuming rng identically
// to the original event-slice implementation (one Intn draw per resolvable
// exit, nothing for arrivals).
func Replay(c *cluster.Cluster, events []Event, rng *rand.Rand) (arrivals, exits int) {
	d := NewDynamics(c, rng, nil, nil)
	for _, ev := range events {
		d.apply(ev)
	}
	return d.stats.Arrivals, d.stats.Exits
}

// PerMinuteCounts aggregates a stream into changes-per-minute, the series
// plotted in paper Fig. 1.
func PerMinuteCounts(events []Event, minutes int) []int {
	counts := make([]int, minutes)
	for _, ev := range events {
		if ev.Minute >= 0 && ev.Minute < minutes {
			counts[ev.Minute]++
		}
	}
	return counts
}
