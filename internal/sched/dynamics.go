package sched

import (
	"math/rand"

	"vmr2l/internal/cluster"
)

// RateFunc gives the expected VM change events per minute at an absolute
// minute of simulated time. Minutes wrap nothing: a RateFunc that models a
// day cycle should reduce its argument modulo 1440 itself (DiurnalRate
// already does).
type RateFunc func(minute int) float64

// Diurnal returns the paper's Fig. 1 day-cycle rate curve with the given
// peak (expected events per minute at 16:00).
func Diurnal(peak float64) RateFunc {
	return func(minute int) float64 { return DiurnalRate(minute, peak) }
}

// Constant returns a flat rate curve.
func Constant(rate float64) RateFunc {
	return func(int) float64 { return rate }
}

// Burst returns a base rate with a burst window [start, start+length)
// minutes at burstRate — the deploy-storm shape that makes precomputed
// plans stale fastest.
func Burst(base, burstRate float64, start, length int) RateFunc {
	return func(minute int) float64 {
		if minute >= start && minute < start+length {
			return burstRate
		}
		return base
	}
}

// Stats counts what a Dynamics engine has applied since construction.
type Stats struct {
	// Minutes is the total simulated time advanced.
	Minutes int
	// Events is every generated event, including rejected arrivals and
	// exits resolved against an empty cluster.
	Events int
	// Arrivals counts VMs successfully placed by BestFit.
	Arrivals int
	// Rejected counts arrivals no PM could host (the VM record remains,
	// unplaced, exactly as a failed VMS request leaves it).
	Rejected int
	// Exits counts removed VMs.
	Exits int

	// Failure-dynamics counters (see FailureSpec). The no-silent-loss
	// accounting bar: every VM that was ever marked evacuation-pending ends
	// up in exactly one of Evacuated, EvacCancelled, or EvacLost (or exited
	// through normal churn, counted in Exits).

	// Crashes counts PM crash events (health Up -> Down).
	Crashes int
	// Drains counts rolling-maintenance drain starts (Up -> Draining).
	Drains int
	// Recoveries counts PMs returned to Up (from Down or Draining).
	Recoveries int
	// Evacuated counts VMs successfully migrated off a Down/Draining PM.
	Evacuated int
	// EvacCancelled counts pending evacuations voided because the PM
	// recovered first or the VM exited/moved through normal churn.
	EvacCancelled int
	// EvacLost counts VMs removed at their evacuation deadline because no
	// Up PM could host them — the honest data-loss counter.
	EvacLost int
}

// Sub returns the field-wise difference s - prev: the delta between two
// cumulative snapshots. Every consumer of per-call deltas (Advance, the
// service's events endpoint) goes through here, so a new counter added to
// Stats only needs subtracting once.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Minutes:       s.Minutes - prev.Minutes,
		Events:        s.Events - prev.Events,
		Arrivals:      s.Arrivals - prev.Arrivals,
		Rejected:      s.Rejected - prev.Rejected,
		Exits:         s.Exits - prev.Exits,
		Crashes:       s.Crashes - prev.Crashes,
		Drains:        s.Drains - prev.Drains,
		Recoveries:    s.Recoveries - prev.Recoveries,
		Evacuated:     s.Evacuated - prev.Evacuated,
		EvacCancelled: s.EvacCancelled - prev.EvacCancelled,
		EvacLost:      s.EvacLost - prev.EvacLost,
	}
}

// Dynamics evolves a live cluster through VMS churn: a pull-based clock
// whose Advance applies Poisson arrivals (placed by BestFit) and
// uniform-random exits in place. It is the event-driven replacement for the
// old precomputed []Event slice; Stream/Replay remain as wrappers.
//
// The engine mutates the cluster it was given — that is the point: the
// cluster is the live system state that drifts away from any snapshot a
// solver is working on. Not safe for concurrent use; callers that share the
// cluster with readers (e.g. a serving session) must serialize access
// externally.
type Dynamics struct {
	c          *cluster.Cluster
	rng        *rand.Rand
	mix        []cluster.VMType
	rate       RateFunc
	arriveFrac float64
	minute     int
	stats      Stats
	// reuseSlots recycles dead (unplaced) VM records for new arrivals,
	// keeping len(c.VMs) bounded for long-lived clusters; see SetReuseSlots.
	reuseSlots bool
	freeIDs    []int
	// fail holds the failure-dynamics state (nil when failures are off and
	// no explicit Crash/Drain has ever been applied); see failures.go.
	fail *failureState
}

// NewDynamics builds an engine over the live cluster c. mix is the flavor
// distribution of arriving VMs and rate the expected events per minute; both
// may be nil when the engine is only used to apply precomputed events
// (Replay does this). Events split 50/50 between arrivals and exits by
// default; SetArriveFrac changes that.
func NewDynamics(c *cluster.Cluster, rng *rand.Rand, mix []cluster.VMType, rate RateFunc) *Dynamics {
	return &Dynamics{c: c, rng: rng, mix: mix, rate: rate, arriveFrac: 0.5}
}

// SetArriveFrac sets the probability that a generated event is an arrival
// (clamped to [0, 1]). 0 models a drain: exits only, as during maintenance
// evacuation; 1 models pure growth.
func (d *Dynamics) SetArriveFrac(f float64) {
	if f < 0 {
		f = 0
	} else if f > 1 {
		f = 1
	}
	d.arriveFrac = f
}

// SetReuseSlots makes arrivals recycle the VM records of exited (and
// rejected) VMs instead of appending forever, so a long-lived cluster —
// e.g. a serving session advanced for simulated weeks — stays bounded by
// its peak population instead of its cumulative churn. Off by default: the
// Replay compatibility wrapper keeps the old always-append id semantics.
//
// Caveat for plan staleness checks: a recycled id can make a migration
// planned for the old VM look merely "moved" rather than "gone". Every
// repair outcome is still feasibility-checked against the live cluster, so
// plans remain safe — classification just attributes the staleness to a
// conflict instead of an exit.
func (d *Dynamics) SetReuseSlots(on bool) { d.reuseSlots = on }

// Cluster returns the live cluster the engine mutates.
func (d *Dynamics) Cluster() *cluster.Cluster { return d.c }

// Minute returns the current simulated clock in minutes.
func (d *Dynamics) Minute() int { return d.minute }

// Stats returns cumulative counts since construction.
func (d *Dynamics) Stats() Stats { return d.stats }

// Advance moves the clock forward by the given minutes, generating and
// applying Poisson event counts minute by minute at the configured rate.
// It returns the delta stats for just this advance. Advancing with a nil
// rate or empty mix moves only the clock (a static scenario). When failure
// dynamics are enabled (SetFailures) or pending evacuations exist, every
// minute also runs one failure step — crashes, drains, recoveries, and
// evacuation processing — after the churn events; Advance returns with no
// VM left on a Down/Draining PM past its evacuation deadline.
func (d *Dynamics) Advance(minutes int) Stats {
	before := d.stats
	for m := 0; m < minutes; m++ {
		if d.rate != nil && len(d.mix) > 0 {
			n := poisson(d.rng, d.rate(d.minute))
			for i := 0; i < n; i++ {
				if d.rng.Float64() < d.arriveFrac {
					d.apply(Event{Minute: d.minute, Arrive: true, Type: d.mix[d.rng.Intn(len(d.mix))]})
				} else {
					d.apply(Event{Minute: d.minute, Arrive: false})
				}
			}
		}
		d.failStep()
		d.minute++
		d.stats.Minutes++
	}
	return d.stats.Sub(before)
}

// Arrive adds a VM of type t and places it with BestFit, reporting the
// chosen PM (-1 when no PM fits; the unplaced record remains, as after a
// failed VMS request, and is recycled under SetReuseSlots).
func (d *Dynamics) Arrive(t cluster.VMType) int {
	d.stats.Events++
	id := d.allocVM(t)
	pm := BestFit(d.c, id)
	if pm >= 0 {
		d.stats.Arrivals++
	} else {
		d.stats.Rejected++
		if d.reuseSlots {
			d.freeIDs = append(d.freeIDs, id)
		}
	}
	return pm
}

// allocVM returns a fresh unplaced VM record of type t: a recycled dead
// slot when reuse is on and one is available, a new append otherwise.
func (d *Dynamics) allocVM(t cluster.VMType) int {
	if d.reuseSlots {
		for len(d.freeIDs) > 0 {
			id := d.freeIDs[len(d.freeIDs)-1]
			d.freeIDs = d.freeIDs[:len(d.freeIDs)-1]
			if id < len(d.c.VMs) && !d.c.VMs[id].Placed() {
				d.c.VMs[id] = cluster.VM{
					ID: id, CPU: t.CPU, Mem: t.Mem, Numas: t.Numas,
					PM: -1, Numa: -1, Service: -1,
				}
				return id
			}
		}
	}
	return d.c.AddVM(t)
}

// Exit removes the placed VM id. Reports false (without consuming rng) when
// the VM does not exist or is not placed.
func (d *Dynamics) Exit(id int) bool {
	d.stats.Events++
	if id < 0 || id >= len(d.c.VMs) || !d.c.VMs[id].Placed() {
		return false
	}
	if err := d.c.Remove(id); err != nil {
		return false
	}
	d.stats.Exits++
	if d.reuseSlots {
		d.freeIDs = append(d.freeIDs, id)
	}
	return true
}

// ExitRandom removes a uniformly random placed VM, reporting false when none
// is placed (no rng is consumed then — the same contract the old Replay
// had).
func (d *Dynamics) ExitRandom() bool {
	d.stats.Events++
	placed := d.c.CountPlaced()
	if placed == 0 {
		return false
	}
	// Pick the k-th placed VM in id order: identical selection (and identical
	// single Intn draw) to the old build-a-slice implementation, without the
	// slice.
	k := d.rng.Intn(placed)
	for i := range d.c.VMs {
		if !d.c.VMs[i].Placed() {
			continue
		}
		if k == 0 {
			if err := d.c.Remove(i); err == nil {
				d.stats.Exits++
				if d.reuseSlots {
					d.freeIDs = append(d.freeIDs, i)
				}
				return true
			}
			return false
		}
		k--
	}
	return false
}

// apply routes one event to the matching applier.
func (d *Dynamics) apply(ev Event) {
	if ev.Arrive {
		d.Arrive(ev.Type)
	} else {
		d.ExitRandom()
	}
}
