package sched

import (
	"math/rand"
	"testing"

	"vmr2l/internal/cluster"
	"vmr2l/internal/trace"
)

// evacIdentity asserts the zero-silent-loss accounting after any sequence of
// failure activity.
func evacIdentity(t *testing.T, d *Dynamics) {
	t.Helper()
	if err := d.CheckFailureInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := d.Cluster().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashMarksAndEvacuates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := trace.MustProfile("tiny").GenerateMapping(rng)
	c.FragRate(cluster.DefaultFragCores)
	d := NewDynamics(c, rng, nil, nil)

	victims := len(c.PMs[0].VMs)
	if victims == 0 {
		t.Fatal("fixture PM 0 hosts no VMs")
	}
	if !d.Crash(0) {
		t.Fatal("Crash refused an Up PM")
	}
	if d.Crash(0) {
		t.Fatal("Crash accepted an already-Down PM")
	}
	if c.PMs[0].Health != cluster.Down {
		t.Fatalf("health %v after crash", c.PMs[0].Health)
	}
	if got := len(d.PendingEvacuations(nil)); got != victims {
		t.Fatalf("pending %d, want %d", got, victims)
	}
	if d.EvacMarked() != victims {
		t.Fatalf("marked %d, want %d", d.EvacMarked(), victims)
	}
	evacIdentity(t, d)

	// Advancing past the deadline resolves every victim: evacuated where an
	// Up PM fits (the tiny fixture always fits at least one), force-lost
	// where none does — never left behind.
	st := d.Advance(DefaultEvacDeadline + 1)
	if st.Crashes != 0 { // the explicit Crash predates this Advance window
		t.Fatalf("delta crashes %d", st.Crashes)
	}
	if st.Evacuated == 0 {
		t.Fatal("no victim evacuated despite spare capacity")
	}
	if st.Evacuated+st.EvacLost != victims {
		t.Fatalf("evacuated %d + lost %d != victims %d", st.Evacuated, st.EvacLost, victims)
	}
	if len(c.PMs[0].VMs) != 0 {
		t.Fatalf("%d VMs still on crashed PM", len(c.PMs[0].VMs))
	}
	if got := len(d.PendingEvacuations(nil)); got != 0 {
		t.Fatalf("pending %d after full evacuation", got)
	}
	evacIdentity(t, d)
}

// TestEvacuationDeadlineForcesLoss pins the honest-loss path: when no Up PM
// can host a stranded VM at its deadline, the VM is removed and counted in
// EvacLost — never silently kept on a dead PM.
func TestEvacuationDeadlineForcesLoss(t *testing.T) {
	c := cluster.New(2, cluster.PMSmall)
	// Fill PM 1 completely so the victim has nowhere to go.
	full := cluster.VMType{CPU: cluster.PMSmall.CPUPerNuma, Mem: cluster.PMSmall.MemPerNuma, Numas: 1}
	for numa := 0; numa < cluster.NumasPerPM; numa++ {
		if err := c.Place(c.AddVM(full), 1, numa); err != nil {
			t.Fatal(err)
		}
	}
	victim := c.AddVM(cluster.VMType{CPU: 4, Mem: 8, Numas: 1})
	if err := c.Place(victim, 0, 0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	d := NewDynamics(c, rng, nil, nil)
	d.SetFailures(FailureSpec{EvacDeadline: 3})

	if !d.Crash(0) {
		t.Fatal("crash failed")
	}
	st := d.Advance(2)
	if st.Evacuated != 0 || st.EvacLost != 0 {
		t.Fatalf("pre-deadline resolution: %+v", st)
	}
	evacIdentity(t, d)
	st = d.Advance(2) // crosses minute 3, the deadline
	if st.EvacLost != 1 {
		t.Fatalf("lost %d at deadline, want 1", st.EvacLost)
	}
	if c.VMs[victim].Placed() {
		t.Fatal("lost VM still placed")
	}
	evacIdentity(t, d)

	// Draining PMs never force loss: the PM is still running.
	d2c := cluster.New(2, cluster.PMSmall)
	for numa := 0; numa < cluster.NumasPerPM; numa++ {
		if err := d2c.Place(d2c.AddVM(full), 1, numa); err != nil {
			t.Fatal(err)
		}
	}
	v2 := d2c.AddVM(cluster.VMType{CPU: 4, Mem: 8, Numas: 1})
	if err := d2c.Place(v2, 0, 0); err != nil {
		t.Fatal(err)
	}
	d2 := NewDynamics(d2c, rand.New(rand.NewSource(3)), nil, nil)
	d2.SetFailures(FailureSpec{EvacDeadline: 2})
	d2.Drain(0)
	st = d2.Advance(10)
	if st.EvacLost != 0 || st.Evacuated != 0 {
		t.Fatalf("draining PM resolved evacuations with a full fleet: %+v", st)
	}
	if !d2c.VMs[v2].Placed() || d2c.VMs[v2].PM != 0 {
		t.Fatal("VM evicted from a draining PM with nowhere to go")
	}
	evacIdentity(t, d2)
}

func TestRecoverCancelsPending(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := trace.MustProfile("tiny").GenerateMapping(rng)
	d := NewDynamics(c, rng, nil, nil)
	d.SetFailures(FailureSpec{EvacDeadline: 1000, EvacPerMinute: 1})

	victims := len(c.PMs[1].VMs)
	d.Crash(1)
	d.Advance(1) // one evacuation attempt under the budget of 1
	st := d.Stats()
	if st.Evacuated != 1 {
		t.Fatalf("budgeted evacuations: %d, want 1", st.Evacuated)
	}
	if !d.Recover(1) {
		t.Fatal("Recover refused a Down PM")
	}
	if d.Recover(1) {
		t.Fatal("Recover accepted an Up PM")
	}
	st = d.Stats()
	if st.EvacCancelled != victims-1 {
		t.Fatalf("cancelled %d, want %d", st.EvacCancelled, victims-1)
	}
	if got := len(d.PendingEvacuations(nil)); got != 0 {
		t.Fatalf("pending %d after recovery", got)
	}
	if c.PMs[1].Health != cluster.Up {
		t.Fatal("PM not Up after recovery")
	}
	evacIdentity(t, d)
}

func TestMaintenanceRotationAndRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := trace.MustProfile("tiny").GenerateMapping(rng)
	c.FragRate(cluster.DefaultFragCores)
	d := NewDynamics(c, rng, nil, nil)
	d.SetFailures(FailureSpec{MaintenanceEvery: 20, DrainDuration: 5, EvacPerMinute: 100})

	st := d.Advance(21) // first drain fires at minute 20
	if st.Drains != 1 {
		t.Fatalf("drains %d after first interval, want 1", st.Drains)
	}
	if c.PMs[0].Health != cluster.Draining && c.HealthCounts()[int(cluster.Draining)] != 1 &&
		d.Stats().Recoveries == 0 {
		t.Fatal("rotation did not drain a PM")
	}
	st = d.Advance(60)
	total := d.Stats()
	if total.Drains < 3 {
		t.Fatalf("rolling maintenance stalled: %d drains in 81 minutes", total.Drains)
	}
	// Drained PMs empty fast (budget 100) and recover after DrainDuration.
	if total.Recoveries == 0 {
		t.Fatal("no drained PM ever recovered")
	}
	_ = st
	evacIdentity(t, d)
}

// TestFailureDynamicsInvariants is the randomized safety property: churn +
// Poisson crashes + rolling maintenance + recoveries, validated every chunk.
func TestFailureDynamicsInvariants(t *testing.T) {
	mix := []cluster.VMType{cluster.StandardTypes[0], cluster.StandardTypes[1], cluster.StandardTypes[4]}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := trace.MustProfile("tiny").GenerateMapping(rng)
		trace.AttachAffinity(c, 3, rng)
		c.FragRate(cluster.DefaultFragCores)
		d := NewDynamics(c, rng, mix, Diurnal(2))
		d.SetReuseSlots(true)
		d.SetFailures(FailureSpec{
			CrashRate:        0.05,
			RecoverAfter:     15,
			EvacDeadline:     8,
			MaintenanceEvery: 30,
			DrainDuration:    10,
			MaxUnavailFrac:   0.5,
		})
		for _, chunk := range []int{13, 60, 7, 120} {
			d.Advance(chunk)
			evacIdentity(t, d)
		}
		st := d.Stats()
		if st.Crashes+st.Drains == 0 {
			t.Fatalf("seed %d: no failure events in 200 minutes", seed)
		}
	}
}

func TestChaosInjectorInvariants(t *testing.T) {
	mix := []cluster.VMType{cluster.StandardTypes[0], cluster.StandardTypes[2]}
	rng := rand.New(rand.NewSource(11))
	c := trace.MustProfile("tiny").GenerateMapping(rng)
	trace.AttachAffinity(c, 3, rng)
	c.FragRate(cluster.DefaultFragCores)
	d := NewDynamics(c, rng, mix, Constant(2))
	ci := NewChaosInjector(d, rand.New(rand.NewSource(12)), ChaosSpec{
		CrashProb: 0.4, DrainProb: 0.3, RecoverProb: 0.5,
	})
	for step := 0; step < 60; step++ {
		ci.Step(3)
		evacIdentity(t, d)
	}
	inj := ci.Injected
	if inj.Crashes == 0 || inj.Drains == 0 || inj.Recoveries == 0 {
		t.Fatalf("chaos walk too tame: %+v", inj)
	}
	st := d.Stats()
	if st.Crashes < inj.Crashes || st.Drains < inj.Drains {
		t.Fatalf("engine stats %+v dropped injected events %+v", st, inj)
	}
	// MaxDownFrac: at no point may the injector have taken the whole fleet
	// (spot check the end state; the cap is enforced per step).
	if c.HealthCounts()[int(cluster.Up)] == 0 {
		t.Fatal("chaos took every PM down")
	}
}

// TestStatsSubCoversFailureCounters guards the delta-snapshot path: a new
// counter that Sub forgets would silently report zero to every consumer.
func TestStatsSubCoversFailureCounters(t *testing.T) {
	a := Stats{Minutes: 10, Crashes: 5, Drains: 4, Recoveries: 3, Evacuated: 7, EvacCancelled: 2, EvacLost: 1}
	b := Stats{Minutes: 4, Crashes: 2, Drains: 1, Recoveries: 1, Evacuated: 3, EvacCancelled: 1, EvacLost: 0}
	got := a.Sub(b)
	want := Stats{Minutes: 6, Crashes: 3, Drains: 3, Recoveries: 2, Evacuated: 4, EvacCancelled: 1, EvacLost: 1}
	if got != want {
		t.Fatalf("Sub = %+v, want %+v", got, want)
	}
}
