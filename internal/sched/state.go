package sched

import (
	"fmt"
	"math/rand"

	"vmr2l/internal/cluster"
)

// Session durability (the multi-node serving tier) needs the dynamics engine
// to be checkpointable: a snapshot taken mid-run, restored on another
// replica, must continue bit-identically to the uninterrupted engine. Two
// pieces make that possible:
//
//   - CountedSource wraps the stdlib rand source and counts every draw, so
//     RNG state serializes as (seed, draws) and restores by fast-forwarding a
//     fresh source — no private stdlib state is touched.
//   - ExportState/ImportState capture everything else Advance consumes:
//     clock, cumulative stats, arrival fraction, the free-id recycling stack
//     (order matters: allocVM pops from the end), and the full failure
//     bookkeeping including the pending-evacuation queue in mark order.
//
// The cluster itself is not part of DynState; callers serialize it alongside
// (the service snapshot codec stores the exact PM.VMs ordering, which
// markEvacuations and swap-delete Remove depend on).

// CountedSource is a seeded rand.Source64 that counts every draw, making its
// position serializable. The underlying stdlib source advances exactly one
// internal step per Int63 or Uint64 call, so (Seed64, Draws) fully determines
// the stream position; Skip replays a fresh source to any recorded position.
//
// rand.New(NewCountedSource(seed)) produces the identical stream to
// rand.New(rand.NewSource(seed)) — wrapping is observationally free.
type CountedSource struct {
	src   rand.Source64
	seed  int64
	draws uint64
}

// NewCountedSource returns a counted source seeded like rand.NewSource.
func NewCountedSource(seed int64) *CountedSource {
	return &CountedSource{src: rand.NewSource(seed).(rand.Source64), seed: seed}
}

// Int63 implements rand.Source.
func (s *CountedSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *CountedSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source, resetting the draw count.
func (s *CountedSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.seed, s.draws = seed, 0
}

// Seed64 returns the seed of the current stream.
func (s *CountedSource) Seed64() int64 { return s.seed }

// Draws returns how many values have been drawn since seeding.
func (s *CountedSource) Draws() uint64 { return s.draws }

// Skip fast-forwards the source by n draws (each one stdlib source step).
// Restoring a recorded position is NewCountedSource(seed) followed by
// Skip(draws).
func (s *CountedSource) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.src.Uint64()
	}
	s.draws += n
}

// FailState is the serializable failure bookkeeping of a Dynamics engine.
// The pending-evacuation index is not stored: it is exactly the set of VM
// ids in Evacs and is rebuilt on import.
type FailState struct {
	Spec FailureSpec `json:"spec"`
	On   bool        `json:"on"`
	// Since maps non-Up PMs to the minute of their last transition.
	Since map[int]int `json:"since,omitempty"`
	// Evacs is the pending-evacuation queue in mark order.
	Evacs []Evacuation `json:"evacs,omitempty"`
	// Marked is the cumulative count of evacuations ever enqueued.
	Marked    int `json:"marked"`
	NextMaint int `json:"next_maint"`
	MaintIdx  int `json:"maint_idx"`
}

// DynState is the serializable state of a Dynamics engine, minus the cluster
// and the RNG position (serialized by the caller; see CountedSource).
type DynState struct {
	Minute     int     `json:"minute"`
	ArriveFrac float64 `json:"arrive_frac"`
	ReuseSlots bool    `json:"reuse_slots"`
	// FreeIDs preserves the recycling stack order: allocVM pops from the end,
	// so a reordered stack would change which VM record the next arrival
	// reuses.
	FreeIDs []int      `json:"free_ids,omitempty"`
	Stats   Stats      `json:"stats"`
	Fail    *FailState `json:"fail,omitempty"`
}

// ExportState captures the engine's full replayable state (deep-copied; the
// engine may keep advancing afterwards).
func (d *Dynamics) ExportState() DynState {
	st := DynState{
		Minute:     d.minute,
		ArriveFrac: d.arriveFrac,
		ReuseSlots: d.reuseSlots,
		Stats:      d.stats,
	}
	if len(d.freeIDs) > 0 {
		st.FreeIDs = append([]int(nil), d.freeIDs...)
	}
	if f := d.fail; f != nil {
		fs := &FailState{
			Spec:      f.spec,
			On:        f.on,
			Marked:    f.marked,
			NextMaint: f.nextMaint,
			MaintIdx:  f.maintIdx,
		}
		if len(f.since) > 0 {
			fs.Since = make(map[int]int, len(f.since))
			for pm, m := range f.since {
				fs.Since[pm] = m
			}
		}
		if len(f.evacs) > 0 {
			fs.Evacs = append([]Evacuation(nil), f.evacs...)
		}
		st.Fail = fs
	}
	return st
}

// ImportState restores an engine to a previously exported state. The engine
// must already wrap the restored cluster (with the exact PM.VMs ordering of
// the export) and an RNG fast-forwarded to the exported position; rate, mix,
// and the failure spec's rate curve come from the engine's constructor. After
// a successful import, Advance continues bit-identically to the engine the
// state was exported from.
func (d *Dynamics) ImportState(st DynState) error {
	for _, id := range st.FreeIDs {
		if id < 0 || id >= len(d.c.VMs) {
			return fmt.Errorf("sched: import: free id %d out of range (have %d vms)", id, len(d.c.VMs))
		}
	}
	if f := st.Fail; f != nil {
		for _, ev := range f.Evacs {
			if ev.VM < 0 || ev.VM >= len(d.c.VMs) {
				return fmt.Errorf("sched: import: evacuation vm %d out of range (have %d vms)", ev.VM, len(d.c.VMs))
			}
			if ev.PM < 0 || ev.PM >= len(d.c.PMs) {
				return fmt.Errorf("sched: import: evacuation pm %d out of range (have %d pms)", ev.PM, len(d.c.PMs))
			}
		}
		for pm := range f.Since {
			if pm < 0 || pm >= len(d.c.PMs) {
				return fmt.Errorf("sched: import: since pm %d out of range (have %d pms)", pm, len(d.c.PMs))
			}
		}
	}
	d.minute = st.Minute
	d.stats = st.Stats
	d.arriveFrac = st.ArriveFrac
	d.reuseSlots = st.ReuseSlots
	d.freeIDs = append(d.freeIDs[:0], st.FreeIDs...)
	if st.Fail == nil {
		d.fail = nil
		return nil
	}
	f := &failureState{
		spec:      st.Fail.Spec,
		on:        st.Fail.On,
		since:     map[int]int{},
		pending:   map[int]int{},
		nextMaint: st.Fail.NextMaint,
		maintIdx:  st.Fail.MaintIdx,
		marked:    st.Fail.Marked,
	}
	for pm, m := range st.Fail.Since {
		f.since[pm] = m
	}
	f.evacs = append([]Evacuation(nil), st.Fail.Evacs...)
	for _, ev := range f.evacs {
		f.pending[ev.VM] = ev.PM
	}
	d.fail = f
	return nil
}

// Mix returns the engine's arriving-VM flavor distribution (nil when the
// engine only applies explicit events).
func (d *Dynamics) Mix() []cluster.VMType { return d.mix }
