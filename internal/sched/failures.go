package sched

import (
	"fmt"
	"math"
	"math/rand"

	"vmr2l/internal/cluster"
)

// Failure dynamics make PM availability part of the live-cluster state the
// serving stack must survive, not a test-only fixture: Poisson PM crashes
// strand their VMs behind an evacuation deadline, rolling maintenance
// drains PMs one at a time, and recoveries return capacity. The engine
// guarantees two invariants after every Advance:
//
//  1. No VM remains on a Down PM past its evacuation deadline — at the
//     deadline the engine force-evacuates (best-fit to any Up PM) and, when
//     the fleet has no room, removes the VM and counts it in EvacLost.
//  2. Zero silent loss — every VM ever marked evacuation-pending is
//     accounted for: EvacMarked == Evacuated + EvacCancelled + EvacLost +
//     len(PendingEvacuations()).

// Default failure-dynamics knobs, used when the corresponding FailureSpec
// field is zero.
const (
	// DefaultEvacDeadline is the minutes a VM may stay on a failed PM.
	DefaultEvacDeadline = 10
	// DefaultEvacPerMinute bounds pre-deadline evacuation attempts per
	// simulated minute (deadline-forced evacuations are never deferred).
	DefaultEvacPerMinute = 8
)

// FailureSpec declares the failure dynamics of a live fleet. The zero value
// disables all automatic failures (explicit Crash/Drain/Recover calls still
// work, e.g. from a ChaosInjector).
type FailureSpec struct {
	// CrashRate is the expected PM crashes per minute (Poisson).
	CrashRate float64
	// RecoverAfter returns a crashed PM to Up after this many minutes;
	// 0 means crashed PMs never recover on their own.
	RecoverAfter int
	// EvacDeadline is the minutes a VM may remain on a Down or Draining PM
	// before the engine force-evacuates it; 0 means DefaultEvacDeadline.
	EvacDeadline int
	// EvacPerMinute bounds how many pending evacuations are attempted per
	// minute ahead of their deadline; 0 means DefaultEvacPerMinute.
	EvacPerMinute int
	// MaintenanceEvery, when positive, starts a rolling-maintenance drain
	// every that many minutes: the next Up PM in id rotation goes Draining.
	MaintenanceEvery int
	// DrainDuration is the minimum minutes a draining PM stays in
	// maintenance; it returns Up once empty and this long has elapsed.
	DrainDuration int
	// MaxUnavailFrac caps the fraction of PMs simultaneously non-Up that
	// random crashes may cause (explicit Crash calls are not capped);
	// 0 means no cap beyond always keeping at least one PM Up.
	MaxUnavailFrac float64
}

// Enabled reports whether the spec produces any automatic failure events.
func (f FailureSpec) Enabled() bool {
	return f.CrashRate > 0 || f.MaintenanceEvery > 0
}

// deadline returns the effective evacuation deadline in minutes.
func (f FailureSpec) deadline() int {
	if f.EvacDeadline > 0 {
		return f.EvacDeadline
	}
	return DefaultEvacDeadline
}

// Evacuation is one pending forced migration: VM must leave PM by Deadline
// (an absolute minute on the engine's clock).
type Evacuation struct {
	VM       int `json:"vm"`
	PM       int `json:"pm"`
	Deadline int `json:"deadline"`
}

// failureState is the engine-internal failure bookkeeping, allocated on
// first use (SetFailures or an explicit Crash/Drain).
type failureState struct {
	spec FailureSpec
	on   bool
	// since records the minute of each non-Up PM's last transition.
	since map[int]int
	// evacs is the pending-evacuation queue in mark order; pending indexes
	// it by VM id (value: the PM of the VM's queue entry) so storms stay
	// O(1) per membership check and stale entries — a recycled VM id or a
	// VM migrated onto a newly failed PM before lazy cancellation ran — are
	// detectable at mark time. At most one queue entry exists per VM.
	evacs   []Evacuation
	pending map[int]int
	// nextMaint is the minute of the next rolling-maintenance drain;
	// maintIdx the rotation cursor.
	nextMaint int
	maintIdx  int
	// marked counts every evacuation ever enqueued (the EvacMarked stat).
	marked int
}

// failState lazily allocates the failure bookkeeping.
func (d *Dynamics) failState() *failureState {
	if d.fail == nil {
		d.fail = &failureState{since: map[int]int{}, pending: map[int]int{}}
	}
	return d.fail
}

// SetFailures enables automatic failure dynamics under spec (replacing any
// previous spec). Pending evacuations survive a spec change; already-set
// deadlines keep their original minutes.
func (d *Dynamics) SetFailures(spec FailureSpec) {
	f := d.failState()
	f.spec = spec
	f.on = spec.Enabled()
	if spec.MaintenanceEvery > 0 {
		f.nextMaint = d.minute + spec.MaintenanceEvery
	}
}

// Failures returns the active failure spec and whether automatic failure
// dynamics are on.
func (d *Dynamics) Failures() (FailureSpec, bool) {
	if d.fail == nil {
		return FailureSpec{}, false
	}
	return d.fail.spec, d.fail.on
}

// EvacMarked returns the cumulative count of evacuations ever enqueued —
// the left side of the zero-silent-loss identity.
func (d *Dynamics) EvacMarked() int {
	if d.fail == nil {
		return 0
	}
	return d.fail.marked
}

// PendingEvacuations appends the pending evacuation queue to dst (mark
// order) and returns it. Entries may be vacuous for up to one minute after
// churn resolves them (the next failure step cancels them).
func (d *Dynamics) PendingEvacuations(dst []Evacuation) []Evacuation {
	if d.fail == nil {
		return dst
	}
	return append(dst, d.fail.evacs...)
}

// Crash transitions an Up PM to Down and marks every hosted VM
// evacuation-pending under the configured deadline. Reports false when the
// PM does not exist or is not Up.
func (d *Dynamics) Crash(pm int) bool {
	if pm < 0 || pm >= len(d.c.PMs) || d.c.PMs[pm].Health != cluster.Up {
		return false
	}
	_ = d.c.SetHealth(pm, cluster.Down)
	f := d.failState()
	f.since[pm] = d.minute
	d.stats.Crashes++
	d.markEvacuations(pm)
	return true
}

// Drain transitions an Up PM to Draining (rolling maintenance) and marks
// its VMs evacuation-pending. Reports false when the PM is not Up.
func (d *Dynamics) Drain(pm int) bool {
	if pm < 0 || pm >= len(d.c.PMs) || d.c.PMs[pm].Health != cluster.Up {
		return false
	}
	_ = d.c.SetHealth(pm, cluster.Draining)
	f := d.failState()
	f.since[pm] = d.minute
	d.stats.Drains++
	d.markEvacuations(pm)
	return true
}

// Recover returns a Down or Draining PM to Up, cancelling the pending
// evacuations of VMs that survived on it. Reports false when the PM does
// not exist or is already Up.
func (d *Dynamics) Recover(pm int) bool {
	if pm < 0 || pm >= len(d.c.PMs) || d.c.PMs[pm].Health == cluster.Up {
		return false
	}
	_ = d.c.SetHealth(pm, cluster.Up)
	f := d.failState()
	delete(f.since, pm)
	d.stats.Recoveries++
	kept := f.evacs[:0]
	for _, ev := range f.evacs {
		if ev.PM == pm && ev.VM < len(d.c.VMs) && d.c.VMs[ev.VM].PM == pm {
			delete(f.pending, ev.VM)
			d.stats.EvacCancelled++
			continue
		}
		kept = append(kept, ev)
	}
	f.evacs = kept
	return true
}

// markEvacuations enqueues every VM hosted on pm for evacuation.
func (d *Dynamics) markEvacuations(pm int) {
	f := d.failState()
	deadline := d.minute + f.spec.deadline()
	for _, vm := range d.c.PMs[pm].VMs {
		if epm, ok := f.pending[vm]; ok {
			if epm == pm {
				continue // already pending from an earlier failure of this PM; keep its deadline
			}
			// The entry refers to a different PM than the one currently
			// hosting the VM: the id was recycled through churn, or the VM
			// migrated onto this PM, after its old entry was enqueued but
			// before lazy cancellation processed it. Cancel the stale entry
			// now and fall through to re-mark — otherwise the VM would sit
			// on a Down PM with no pending evacuation.
			d.cancelPending(vm)
		}
		f.pending[vm] = pm
		f.marked++
		f.evacs = append(f.evacs, Evacuation{VM: vm, PM: pm, Deadline: deadline})
	}
}

// cancelPending removes vm's queue entry (there is at most one) and counts
// it cancelled.
func (d *Dynamics) cancelPending(vm int) {
	f := d.fail
	kept := f.evacs[:0]
	for _, ev := range f.evacs {
		if ev.VM == vm {
			d.stats.EvacCancelled++
			continue
		}
		kept = append(kept, ev)
	}
	f.evacs = kept
	delete(f.pending, vm)
}

// failStep runs one minute of failure dynamics: automatic recoveries,
// rolling maintenance, Poisson crashes (when SetFailures enabled them),
// then evacuation processing (always, so explicit chaos injection gets the
// same deadline guarantees).
func (d *Dynamics) failStep() {
	f := d.fail
	if f == nil {
		return
	}
	if f.on {
		d.autoRecoveries()
		d.maintenanceTick()
		n := poisson(d.rng, f.spec.CrashRate)
		for i := 0; i < n; i++ {
			d.crashRandom()
		}
	}
	d.processEvacuations()
}

// autoRecoveries returns PMs whose outage has run its course: crashed PMs
// after RecoverAfter minutes, draining PMs once empty and past
// DrainDuration.
func (d *Dynamics) autoRecoveries() {
	f := d.fail
	for pm := range d.c.PMs {
		p := &d.c.PMs[pm]
		elapsed := d.minute - f.since[pm]
		switch p.Health {
		case cluster.Down:
			if f.spec.RecoverAfter > 0 && elapsed >= f.spec.RecoverAfter {
				d.Recover(pm)
			}
		case cluster.Draining:
			if len(p.VMs) == 0 && elapsed >= f.spec.DrainDuration {
				d.Recover(pm)
			}
		}
	}
}

// maintenanceTick starts the next rolling-maintenance drain when due.
func (d *Dynamics) maintenanceTick() {
	f := d.fail
	if f.spec.MaintenanceEvery <= 0 || d.minute < f.nextMaint {
		return
	}
	f.nextMaint = d.minute + f.spec.MaintenanceEvery
	for tries := 0; tries < len(d.c.PMs); tries++ {
		pm := f.maintIdx % len(d.c.PMs)
		f.maintIdx++
		if d.c.PMs[pm].Health == cluster.Up {
			d.Drain(pm)
			return
		}
	}
}

// crashRandom crashes one uniformly random Up PM, honoring MaxUnavailFrac
// and never taking the last Up PM.
func (d *Dynamics) crashRandom() bool {
	f := d.fail
	up := 0
	for i := range d.c.PMs {
		if d.c.PMs[i].Health == cluster.Up {
			up++
		}
	}
	if up <= 1 {
		return false // never crash the last healthy PM
	}
	if frac := f.spec.MaxUnavailFrac; frac > 0 {
		unavail := len(d.c.PMs) - up
		if float64(unavail+1) > frac*float64(len(d.c.PMs)) {
			return false
		}
	}
	k := d.rng.Intn(up)
	for i := range d.c.PMs {
		if d.c.PMs[i].Health != cluster.Up {
			continue
		}
		if k == 0 {
			return d.Crash(i)
		}
		k--
	}
	return false
}

// processEvacuations walks the pending queue once: vacuous entries (VM
// exited or PM recovered) are cancelled, up to EvacPerMinute pre-deadline
// entries are attempted, and entries at/past deadline on a Down PM are
// forced — evacuated if any Up PM fits, else removed and counted lost.
// Draining PMs are never force-removed (the PM is still running); their
// entries retry every minute.
func (d *Dynamics) processEvacuations() {
	f := d.fail
	if len(f.evacs) == 0 {
		return
	}
	budget := f.spec.EvacPerMinute
	if budget <= 0 {
		budget = DefaultEvacPerMinute
	}
	kept := f.evacs[:0]
	for _, ev := range f.evacs {
		if ev.VM >= len(d.c.VMs) || d.c.VMs[ev.VM].PM != ev.PM {
			// Exited, migrated, or recycled through churn: nothing left to do.
			delete(f.pending, ev.VM)
			d.stats.EvacCancelled++
			continue
		}
		if d.c.PMs[ev.PM].Health == cluster.Up {
			delete(f.pending, ev.VM)
			d.stats.EvacCancelled++
			continue
		}
		forced := d.minute >= ev.Deadline && d.c.PMs[ev.PM].Health == cluster.Down
		if !forced {
			if budget <= 0 {
				kept = append(kept, ev)
				continue
			}
			budget--
		}
		if d.evacuate(ev.VM) >= 0 {
			delete(f.pending, ev.VM)
			d.stats.Evacuated++
			continue
		}
		if forced {
			// The fleet has no room and the VM cannot stay on a dead PM:
			// honest data loss, never silent.
			_ = d.c.Remove(ev.VM)
			delete(f.pending, ev.VM)
			d.stats.EvacLost++
			if d.reuseSlots {
				d.freeIDs = append(d.freeIDs, ev.VM)
			}
			continue
		}
		kept = append(kept, ev)
	}
	f.evacs = kept
}

// evacuate migrates a placed VM to the best-fit Up PM (largest 16-core
// fragment drop, the BestFit rule), returning the destination or -1 when no
// Up PM can host it.
func (d *Dynamics) evacuate(vm int) int {
	c := d.c
	bestPM, bestScore := -1, math.MinInt
	for pm := range c.PMs {
		if !c.CanHost(vm, pm) {
			continue
		}
		numa := c.BestNuma(vm, pm, cluster.DefaultFragCores)
		if numa < 0 {
			continue
		}
		// Migrate re-derives the NUMA with the same BestNuma rule.
		if score := c.PlaceFragDelta(vm, pm, numa, cluster.DefaultFragCores); score > bestScore {
			bestPM, bestScore = pm, score
		}
	}
	if bestPM < 0 {
		return -1
	}
	if err := c.Migrate(vm, bestPM, cluster.DefaultFragCores); err != nil {
		return -1
	}
	return bestPM
}

// CheckFailureInvariants verifies the two serving invariants the failure
// engine guarantees after every Advance: no VM sits on a Down PM past its
// evacuation deadline (every stranded VM has a live pending entry), and the
// evacuation accounting balances exactly (zero silent loss). Intended for
// tests and the scenario fuzzer.
func (d *Dynamics) CheckFailureInvariants() error {
	var f failureState
	if d.fail != nil {
		f = *d.fail
	} else {
		f.pending = map[int]int{}
	}
	st := d.stats
	if got := st.Evacuated + st.EvacCancelled + st.EvacLost + len(f.evacs); got != f.marked {
		return fmt.Errorf("sched: evacuation accounting: marked %d != evacuated %d + cancelled %d + lost %d + pending %d",
			f.marked, st.Evacuated, st.EvacCancelled, st.EvacLost, len(f.evacs))
	}
	for i := range d.c.PMs {
		if d.c.PMs[i].Health != cluster.Down {
			continue
		}
		for _, vm := range d.c.PMs[i].VMs {
			if _, ok := f.pending[vm]; !ok {
				return fmt.Errorf("sched: vm %d stranded on down pm %d with no pending evacuation", vm, i)
			}
		}
	}
	for _, ev := range f.evacs {
		if ev.VM < len(d.c.VMs) && d.c.VMs[ev.VM].PM == ev.PM &&
			d.c.PMs[ev.PM].Health == cluster.Down && ev.Deadline < d.minute {
			return fmt.Errorf("sched: vm %d on down pm %d past deadline %d (minute %d)",
				ev.VM, ev.PM, ev.Deadline, d.minute)
		}
	}
	return nil
}

// ChaosSpec drives adversarial failure injection on top of a Dynamics
// engine: per-step probabilities of crashing, draining, or recovering a
// random PM, independent of (and composable with) the engine's own Poisson
// failure dynamics.
type ChaosSpec struct {
	// CrashProb / DrainProb are per-Step probabilities of crashing or
	// draining one uniformly random Up PM.
	CrashProb, DrainProb float64
	// RecoverProb is the per-Step probability of recovering one uniformly
	// random non-Up PM.
	RecoverProb float64
	// MaxDownFrac caps the fraction of PMs the injector itself takes
	// non-Up; 0 means 0.5.
	MaxDownFrac float64
}

// ChaosInjector random-walks PM failures over a Dynamics engine: every Step
// rolls the chaos dice, injects the chosen transitions through the same
// Crash/Drain/Recover paths the automatic dynamics use, then advances the
// clock — so the evacuation deadlines and accounting guarantees hold under
// chaos exactly as under declared failure specs. It owns its rng; the
// engine's stream is untouched by injection decisions.
type ChaosInjector struct {
	d    *Dynamics
	rng  *rand.Rand
	spec ChaosSpec
	// Injected counts transitions the injector performed, by kind.
	Injected struct{ Crashes, Drains, Recoveries int }
}

// NewChaosInjector builds an injector over d with its own rng.
func NewChaosInjector(d *Dynamics, rng *rand.Rand, spec ChaosSpec) *ChaosInjector {
	if spec.MaxDownFrac <= 0 {
		spec.MaxDownFrac = 0.5
	}
	return &ChaosInjector{d: d, rng: rng, spec: spec}
}

// Dynamics returns the wrapped engine.
func (ci *ChaosInjector) Dynamics() *Dynamics { return ci.d }

// Step injects at most one crash, one drain, and one recovery, then
// advances the engine by the given minutes, returning the delta stats.
func (ci *ChaosInjector) Step(minutes int) Stats {
	c := ci.d.Cluster()
	counts := c.HealthCounts()
	down := counts[cluster.Draining] + counts[cluster.Down]
	capOK := float64(down+1) <= ci.spec.MaxDownFrac*float64(len(c.PMs))
	if capOK && ci.rng.Float64() < ci.spec.CrashProb {
		if pm := ci.pickByHealth(cluster.Up); pm >= 0 && ci.d.Crash(pm) {
			ci.Injected.Crashes++
			down++
		}
	}
	capOK = float64(down+1) <= ci.spec.MaxDownFrac*float64(len(c.PMs))
	if capOK && ci.rng.Float64() < ci.spec.DrainProb {
		if pm := ci.pickByHealth(cluster.Up); pm >= 0 && ci.d.Drain(pm) {
			ci.Injected.Drains++
		}
	}
	if ci.rng.Float64() < ci.spec.RecoverProb {
		if pm := ci.pickNonUp(); pm >= 0 && ci.d.Recover(pm) {
			ci.Injected.Recoveries++
		}
	}
	return ci.d.Advance(minutes)
}

// pickByHealth returns a uniformly random PM in state h, or -1.
func (ci *ChaosInjector) pickByHealth(h cluster.Health) int {
	c := ci.d.Cluster()
	n := 0
	for i := range c.PMs {
		if c.PMs[i].Health == h {
			n++
		}
	}
	if n == 0 {
		return -1
	}
	k := ci.rng.Intn(n)
	for i := range c.PMs {
		if c.PMs[i].Health != h {
			continue
		}
		if k == 0 {
			return i
		}
		k--
	}
	return -1
}

// pickNonUp returns a uniformly random Draining or Down PM, or -1.
func (ci *ChaosInjector) pickNonUp() int {
	c := ci.d.Cluster()
	n := 0
	for i := range c.PMs {
		if c.PMs[i].Health != cluster.Up {
			n++
		}
	}
	if n == 0 {
		return -1
	}
	k := ci.rng.Intn(n)
	for i := range c.PMs {
		if c.PMs[i].Health == cluster.Up {
			continue
		}
		if k == 0 {
			return i
		}
		k--
	}
	return -1
}
