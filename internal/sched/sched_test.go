package sched

import (
	"math"
	"math/rand"
	"testing"

	"vmr2l/internal/cluster"
	"vmr2l/internal/trace"
)

func TestBestFitPrefersFragmentReduction(t *testing.T) {
	// PM0 NUMA0 has 20 free (frag 4); PM1 NUMA0 has 32 free (frag 0).
	// A 4-core VM on PM0 makes 16 free (frag 0, reduction 4); on PM1 it
	// makes 28 free (frag 12, reduction -12). Best-fit must pick PM0.
	c := cluster.New(2, cluster.PMType{CPUPerNuma: 32, MemPerNuma: 64})
	filler := c.AddVM(cluster.VMType{CPU: 12, Mem: 12, Numas: 1})
	if err := c.Place(filler, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Fill second NUMAs so they don't interfere.
	for pm := 0; pm < 2; pm++ {
		id := c.AddVM(cluster.VMType{CPU: 32, Mem: 32, Numas: 1})
		if err := c.Place(id, pm, 1); err != nil {
			t.Fatal(err)
		}
	}
	v := c.AddVM(cluster.VMType{CPU: 4, Mem: 8, Numas: 1})
	if got := BestFit(c, v); got != 0 {
		t.Fatalf("BestFit = pm %d, want 0", got)
	}
	if c.VMs[v].PM != 0 {
		t.Fatal("vm not placed on chosen pm")
	}
}

func TestBestFitReturnsMinusOneWhenFull(t *testing.T) {
	c := cluster.New(1, cluster.PMType{CPUPerNuma: 4, MemPerNuma: 4})
	big := c.AddVM(cluster.VMType{CPU: 16, Mem: 16, Numas: 1})
	if got := BestFit(c, big); got != -1 {
		t.Fatalf("BestFit on full cluster = %d, want -1", got)
	}
}

func TestBestFitRespectsAffinity(t *testing.T) {
	c := cluster.New(2, cluster.PMType{CPUPerNuma: 32, MemPerNuma: 64})
	a := c.AddVM(cluster.VMType{CPU: 4, Mem: 8, Numas: 1})
	c.VMs[a].Service = 1
	if err := c.Place(a, 0, 0); err != nil {
		t.Fatal(err)
	}
	c.EnableAntiAffinity()
	b := c.AddVM(cluster.VMType{CPU: 4, Mem: 8, Numas: 1})
	c.VMs[b].Service = 1
	if got := BestFit(c, b); got != 1 {
		t.Fatalf("BestFit = %d, want 1 (affinity forbids pm 0)", got)
	}
}

func TestDiurnalRateShape(t *testing.T) {
	// Trough around 04:00, peak around 16:00 (paper Fig. 1: VMR runs in the
	// early-morning lull).
	trough := DiurnalRate(4*60, 10)
	peak := DiurnalRate(16*60, 10)
	if trough >= peak {
		t.Fatalf("trough %v >= peak %v", trough, peak)
	}
	if peak > 10.5 || trough < 0 {
		t.Fatalf("rates out of range: trough %v peak %v", trough, peak)
	}
	// Scale linearity.
	if math.Abs(DiurnalRate(600, 20)-2*DiurnalRate(600, 10)) > 1e-9 {
		t.Error("peak scaling not linear")
	}
}

func TestStreamAndPerMinuteCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mix := []cluster.VMType{cluster.StandardTypes[0], cluster.StandardTypes[1]}
	events := Stream(rng, 120, 8, mix)
	if len(events) == 0 {
		t.Fatal("no events generated")
	}
	counts := PerMinuteCounts(events, 120)
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != len(events) {
		t.Fatalf("counts sum %d != events %d", total, len(events))
	}
}

func TestReplayKeepsClusterValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := trace.MustProfile("tiny").GenerateMapping(rng)
	mix := []cluster.VMType{cluster.StandardTypes[0], cluster.StandardTypes[1], cluster.StandardTypes[2]}
	events := Stream(rng, 60, 4, mix)
	arr, ex := Replay(c, events, rng)
	if arr == 0 && ex == 0 {
		t.Fatal("replay applied nothing")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonMeanRoughlyLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const lambda = 5.0
	sum := 0
	const n = 2000
	for i := 0; i < n; i++ {
		sum += poisson(rng, lambda)
	}
	mean := float64(sum) / n
	if math.Abs(mean-lambda) > 0.3 {
		t.Fatalf("poisson mean = %v, want ~%v", mean, lambda)
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("non-positive lambda must yield 0")
	}
}

// TestBestFitNeverTargetsDegradedPM is the placement-health regression test:
// whatever capacity a draining or down PM advertises, neither BestFit nor the
// unplaced-affinity path may choose it.
func TestBestFitNeverTargetsDegradedPM(t *testing.T) {
	for _, h := range []cluster.Health{cluster.Draining, cluster.Down} {
		// Two PMs: PM 0 empty (the tempting best-fit target), PM 1 half full.
		c := cluster.New(2, cluster.PMSmall)
		if err := c.Place(c.AddVM(cluster.VMType{CPU: 20, Mem: 64, Numas: 1}), 1, 0); err != nil {
			t.Fatal(err)
		}
		if err := c.SetHealth(0, h); err != nil {
			t.Fatal(err)
		}
		id := c.AddVM(cluster.VMType{CPU: 8, Mem: 16, Numas: 1})
		if pm := BestFit(c, id); pm != 1 {
			t.Fatalf("health %v: BestFit chose pm %d, want 1", h, pm)
		}
		if canHostUnplaced(c, c.AddVM(cluster.VMType{CPU: 8, Mem: 16, Numas: 1}), 0) {
			t.Fatalf("health %v: canHostUnplaced accepted a degraded PM", h)
		}
		// With every PM degraded, placement must fail outright.
		if err := c.SetHealth(1, h); err != nil {
			t.Fatal(err)
		}
		if pm := BestFit(c, c.AddVM(cluster.VMType{CPU: 1, Mem: 1, Numas: 1})); pm != -1 {
			t.Fatalf("health %v: BestFit placed onto a fully degraded fleet (pm %d)", h, pm)
		}
	}
}
