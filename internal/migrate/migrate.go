// Package migrate models live VM migration cost with iterative pre-copy
// (paper section 1): the VM's memory is copied while it keeps running,
// pages dirtied during a round are re-copied in the next, and once the
// remaining dirty set is small the VM is paused for a final stop-and-copy.
// Since clusters use compute-storage separation, only memory moves; with
// data-center-grade bandwidth the overhead is low — this package quantifies
// exactly how low, for plan-cost accounting and the visualizer.
package migrate

import (
	"time"

	"vmr2l/internal/cluster"
	"vmr2l/internal/sim"
)

// Model holds the transfer parameters of one migration.
type Model struct {
	// BandwidthMBps is the memory-copy throughput (MB/s). Data-center
	// internal networks sustain multi-GB/s (paper cites high-bandwidth
	// internal file transfer).
	BandwidthMBps float64
	// DirtyRateMBps is how fast the running VM dirties memory (MB/s).
	DirtyRateMBps float64
	// StopCopyMB is the dirty-set size below which the VM is paused for the
	// final synchronization.
	StopCopyMB float64
	// MaxRounds bounds pre-copy iterations; hitting it forces stop-and-copy
	// with whatever is left (the non-converging case).
	MaxRounds int
}

// DefaultModel reflects a 25 Gb/s migration network and a moderately busy
// development VM.
func DefaultModel() Model {
	return Model{BandwidthMBps: 3000, DirtyRateMBps: 200, StopCopyMB: 64, MaxRounds: 30}
}

// Estimate is the predicted cost of one live migration.
type Estimate struct {
	Rounds        int
	TotalCopiedMB float64
	// Duration is the whole migration (all pre-copy rounds + stop-copy).
	Duration time.Duration
	// Downtime is only the final pause the guest observes.
	Downtime time.Duration
	// Converged is false when MaxRounds fired before the dirty set shrank
	// below StopCopyMB.
	Converged bool
}

// Estimate predicts the cost of migrating a VM with memGB of memory.
func (m Model) Estimate(memGB int) Estimate {
	var e Estimate
	if memGB <= 0 || m.BandwidthMBps <= 0 {
		e.Converged = true
		return e
	}
	remaining := float64(memGB) * 1024
	for {
		if remaining <= m.StopCopyMB || e.Rounds >= m.MaxRounds {
			break
		}
		e.Rounds++
		copyTime := remaining / m.BandwidthMBps
		e.TotalCopiedMB += remaining
		e.Duration += time.Duration(copyTime * float64(time.Second))
		dirtied := m.DirtyRateMBps * copyTime
		if dirtied >= remaining && dirtied >= m.StopCopyMB && m.DirtyRateMBps >= m.BandwidthMBps {
			// Dirtying outpaces copying: pre-copy cannot converge.
			remaining = dirtied
			break
		}
		remaining = dirtied
	}
	e.Converged = remaining <= m.StopCopyMB || m.DirtyRateMBps < m.BandwidthMBps
	// Final stop-and-copy of whatever is left.
	e.TotalCopiedMB += remaining
	pause := remaining / m.BandwidthMBps
	e.Downtime = time.Duration(pause * float64(time.Second))
	e.Duration += e.Downtime
	return e
}

// PlanCost estimates the sequential cost of deploying a whole migration
// plan on cluster c: total wall time, summed guest downtime, and bytes
// moved. VMs referenced by the plan are read from c (pre-deployment state).
func PlanCost(c *cluster.Cluster, plan []sim.Migration, m Model) (total, downtime time.Duration, copiedMB float64) {
	for _, mig := range plan {
		if mig.VM < 0 || mig.VM >= len(c.VMs) {
			continue
		}
		est := m.Estimate(c.VMs[mig.VM].Mem)
		total += est.Duration
		downtime += est.Downtime
		copiedMB += est.TotalCopiedMB
	}
	return total, downtime, copiedMB
}
