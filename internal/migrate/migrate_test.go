package migrate

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"vmr2l/internal/heuristics"
	"vmr2l/internal/sim"
	"vmr2l/internal/solver"
	"vmr2l/internal/trace"
)

func TestEstimateConvergesWhenBandwidthWins(t *testing.T) {
	m := DefaultModel()
	e := m.Estimate(32) // a 16xlarge-class VM
	if !e.Converged {
		t.Fatal("should converge at 15:1 bandwidth:dirty ratio")
	}
	if e.Rounds < 2 {
		t.Fatalf("expected multiple pre-copy rounds, got %d", e.Rounds)
	}
	// First round alone copies 32 GB; total must exceed it.
	if e.TotalCopiedMB <= 32*1024 {
		t.Fatalf("total copied %v MB too small", e.TotalCopiedMB)
	}
	// Downtime is tiny relative to total duration (the live-migration win).
	if e.Downtime > e.Duration/10 {
		t.Fatalf("downtime %v not small vs duration %v", e.Downtime, e.Duration)
	}
	if e.Downtime <= 0 {
		t.Fatal("downtime must be positive (final stop-copy)")
	}
}

func TestEstimateGeometricSeries(t *testing.T) {
	// With dirty/bandwidth ratio r, round k copies size*r^k; verify the
	// second round is exactly ratio times the first.
	m := Model{BandwidthMBps: 1000, DirtyRateMBps: 100, StopCopyMB: 1, MaxRounds: 50}
	e := m.Estimate(1) // 1024 MB
	if !e.Converged {
		t.Fatal("must converge")
	}
	// Sum of geometric series: 1024 * (1/(1-0.1)) ≈ 1137.8 MB.
	want := 1024.0 / (1 - 0.1)
	if e.TotalCopiedMB < 1024 || e.TotalCopiedMB > want*1.01 {
		t.Fatalf("total copied %v MB, want <= %v", e.TotalCopiedMB, want)
	}
}

func TestEstimateNonConverging(t *testing.T) {
	m := Model{BandwidthMBps: 100, DirtyRateMBps: 200, StopCopyMB: 16, MaxRounds: 10}
	e := m.Estimate(4)
	if e.Converged {
		t.Fatal("dirtying faster than copying cannot converge")
	}
	if e.Downtime <= 0 {
		t.Fatal("forced stop-copy must have downtime")
	}
}

func TestEstimateEdgeCases(t *testing.T) {
	m := DefaultModel()
	if e := m.Estimate(0); e.Duration != 0 || !e.Converged {
		t.Fatalf("zero memory should be free: %+v", e)
	}
	bad := Model{BandwidthMBps: 0}
	if e := bad.Estimate(8); e.Duration != 0 {
		t.Fatalf("zero bandwidth guarded: %+v", e)
	}
}

func TestPlanCostAccumulates(t *testing.T) {
	c := trace.MustProfile("tiny").GenerateFragmented(rand.New(rand.NewSource(1)), 0.1, 10)
	res, err := solver.Evaluate(context.Background(), heuristics.HA{}, c, sim.DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan) == 0 {
		t.Skip("no migrations")
	}
	total, down, copied := PlanCost(c, res.Plan, DefaultModel())
	if total <= 0 || copied <= 0 {
		t.Fatalf("empty cost for %d migrations", len(res.Plan))
	}
	if down >= total {
		t.Fatal("downtime cannot exceed total duration")
	}
	// Per-VM sanity: cost of the plan equals the sum of singles.
	var sum time.Duration
	for _, m := range res.Plan {
		sum += DefaultModel().Estimate(c.VMs[m.VM].Mem).Duration
	}
	if sum != total {
		t.Fatalf("PlanCost %v != summed %v", total, sum)
	}
}
