package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// denseTreeAttention is the reference: full masked attention with a
// same-group mask, the pre-optimization realization of tree-local attention.
func denseTreeAttention(q, k, v *Tensor, groups [][]int, scale float64) *Tensor {
	n := q.Rows
	mask := make([]bool, n*n)
	for _, g := range groups {
		for _, i := range g {
			for _, j := range g {
				mask[i*n+j] = true
			}
		}
	}
	scores := MaskedFill(Scale(MatMulT(q, k), scale), mask, -1e9)
	return MatMul(Softmax(scores), v)
}

func randGroups(rng *rand.Rand, n int) [][]int {
	var groups [][]int
	perm := rng.Perm(n)
	for i := 0; i < n; {
		s := 1 + rng.Intn(4)
		if i+s > n {
			s = n - i
		}
		g := append([]int(nil), perm[i:i+s]...)
		// Ascending members, matching the policy's group construction.
		for a := 1; a < len(g); a++ {
			for b := a; b > 0 && g[b] < g[b-1]; b-- {
				g[b], g[b-1] = g[b-1], g[b]
			}
		}
		groups = append(groups, g)
		i += s
	}
	return groups
}

// TestGroupedAttentionMatchesMaskedDense verifies the block-diagonal op
// equals full attention under the equivalent mask.
func TestGroupedAttentionMatchesMaskedDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n, d := 2+rng.Intn(12), 1+rng.Intn(8)
		q := randTensor(rng, n, d)
		k := randTensor(rng, n, d)
		v := randTensor(rng, n, d)
		groups := randGroups(rng, n)
		scale := 1 / math.Sqrt(float64(d))
		got := GroupedAttention(q, k, v, groups, scale)
		want := denseTreeAttention(q, k, v, groups, scale)
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
				t.Fatalf("trial %d element %d: got %g want %g", trial, i, got.Data[i], want.Data[i])
			}
		}
		var ar Arena
		fast := ar.GroupedAttention(q, k, v, groups, scale)
		for i := range want.Data {
			if math.Abs(fast.Data[i]-want.Data[i]) > 1e-12 {
				t.Fatalf("trial %d arena element %d: got %g want %g", trial, i, fast.Data[i], want.Data[i])
			}
		}
	}
}

// TestGroupedAttentionGradients checks the custom backward against the
// masked-dense graph's gradients (same loss, same inputs).
func TestGroupedAttentionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 6; trial++ {
		n, d := 2+rng.Intn(8), 1+rng.Intn(6)
		mk := func() (*Tensor, *Tensor) {
			a := randTensor(rng, n, d)
			b := a.Clone()
			return a.Param(), b.Param()
		}
		q1, q2 := mk()
		k1, k2 := mk()
		v1, v2 := mk()
		groups := randGroups(rng, n)
		scale := 1 / math.Sqrt(float64(d))
		// Weighted sum keeps the loss sensitive to every output element.
		w := randTensor(rng, n, d)
		loss1 := Sum(Mul(GroupedAttention(q1, k1, v1, groups, scale), w))
		loss1.Backward()
		loss2 := Sum(Mul(denseTreeAttention(q2, k2, v2, groups, scale), w))
		loss2.Backward()
		for name, pair := range map[string][2]*Tensor{"q": {q1, q2}, "k": {k1, k2}, "v": {v1, v2}} {
			for i := range pair[0].Grad {
				if math.Abs(pair[0].Grad[i]-pair[1].Grad[i]) > 1e-9 {
					t.Fatalf("trial %d d%s[%d]: grouped %g dense %g", trial, name, i, pair[0].Grad[i], pair[1].Grad[i])
				}
			}
		}
	}
}
