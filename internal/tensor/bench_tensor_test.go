package tensor

import (
	"math/rand"
	"testing"
)

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 64, 64, 1)
	y := Randn(rng, 64, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMul(x, y)
	}
}

func BenchmarkMatMulBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		x := Randn(rng, 64, 64, 1).Param()
		y := Randn(rng, 64, 64, 1).Param()
		b.StartTimer()
		Mean(MatMul(x, y)).Backward()
	}
}

func BenchmarkSoftmaxForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		x := Randn(rng, 32, 256, 1).Param()
		b.StartTimer()
		Mean(Softmax(x)).Backward()
	}
}

func BenchmarkLayerNorm(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := Randn(rng, 128, 64, 1)
	gamma := New(1, 64)
	for i := range gamma.Data {
		gamma.Data[i] = 1
	}
	beta := New(1, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = LayerNorm(x, gamma, beta, 1e-5)
	}
}
