package tensor

import (
	"fmt"
	"math"
)

func sameShape(a, b *Tensor, op string) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Add returns a + b (elementwise).
func Add(a, b *Tensor) *Tensor {
	sameShape(a, b, "Add")
	out := child(a.Rows, a.Cols, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i]
				}
			}
			if b.requiresGrad {
				b.ensureGrad()
				for i := range out.Grad {
					b.Grad[i] += out.Grad[i]
				}
			}
		}
	}
	return out
}

// Sub returns a - b (elementwise).
func Sub(a, b *Tensor) *Tensor {
	sameShape(a, b, "Sub")
	out := child(a.Rows, a.Cols, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i]
				}
			}
			if b.requiresGrad {
				b.ensureGrad()
				for i := range out.Grad {
					b.Grad[i] -= out.Grad[i]
				}
			}
		}
	}
	return out
}

// Mul returns a ⊙ b (elementwise).
func Mul(a, b *Tensor) *Tensor {
	sameShape(a, b, "Mul")
	out := child(a.Rows, a.Cols, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i] * b.Data[i]
				}
			}
			if b.requiresGrad {
				b.ensureGrad()
				for i := range out.Grad {
					b.Grad[i] += out.Grad[i] * a.Data[i]
				}
			}
		}
	}
	return out
}

// Scale returns c·a.
func Scale(a *Tensor, c float64) *Tensor {
	out := child(a.Rows, a.Cols, a)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * c
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i] * c
			}
		}
	}
	return out
}

// AddScalar returns a + c.
func AddScalar(a *Tensor, c float64) *Tensor {
	out := child(a.Rows, a.Cols, a)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + c
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i]
			}
		}
	}
	return out
}

// MatMul returns a·b for a (m×k) and b (k×n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := child(a.Rows, b.Cols, a, b)
	matMulInto(out.Data, a.Data, b.Data, a.Rows, a.Cols, b.Cols)
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				a.ensureGrad()
				// dA += dOut · Bᵀ
				matMulTAccum(a.Grad, out.Grad, b.Data, a.Rows, b.Cols, a.Cols)
			}
			if b.requiresGrad {
				b.ensureGrad()
				// dB += Aᵀ · dOut
				matMulATAccum(b.Grad, a.Data, out.Grad, a.Rows, a.Cols, out.Cols)
			}
		}
	}
	return out
}

// MatMulT returns a·bᵀ for a (m×k) and b (n×k).
func MatMulT(a, b *Tensor) *Tensor {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := child(a.Rows, b.Rows, a, b)
	matMulTInto(out.Data, a.Data, b.Data, a.Rows, a.Cols, b.Rows)
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				a.ensureGrad()
				// dA += dOut · B
				matMulRange(a.Grad, out.Grad, b.Data, 0, a.Rows, out.Cols, a.Cols)
			}
			if b.requiresGrad {
				b.ensureGrad()
				// dB += dOutᵀ · A
				matMulATAccum(b.Grad, out.Grad, a.Data, a.Rows, out.Cols, a.Cols)
			}
		}
	}
	return out
}

// Affine returns x·w + b for x (m×k), w (k×n), b (1×n) as ONE graph node —
// the fused Linear layer. Compared to MatMul followed by AddRow it saves a
// full intermediate tensor (data + grad), one output traversal, and one
// backward closure per layer, which is most of the training hot path.
func Affine(x, w, b *Tensor) *Tensor {
	if x.Cols != w.Rows || b.Rows != 1 || b.Cols != w.Cols {
		panic(fmt.Sprintf("tensor: Affine %dx%d · %dx%d + %dx%d", x.Rows, x.Cols, w.Rows, w.Cols, b.Rows, b.Cols))
	}
	out := child(x.Rows, w.Cols, x, w, b)
	matMulInto(out.Data, x.Data, w.Data, x.Rows, x.Cols, w.Cols)
	n := w.Cols
	for i := 0; i < out.Rows; i++ {
		or := out.Data[i*n : (i+1)*n]
		for j := range or {
			or[j] += b.Data[j]
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			if x.requiresGrad {
				x.ensureGrad()
				// dX += dOut · Wᵀ
				matMulTAccum(x.Grad, out.Grad, w.Data, x.Rows, n, x.Cols)
			}
			if w.requiresGrad {
				w.ensureGrad()
				// dW += Xᵀ · dOut
				matMulATAccum(w.Grad, x.Data, out.Grad, x.Rows, x.Cols, n)
			}
			if b.requiresGrad {
				b.ensureGrad()
				for i := 0; i < out.Rows; i++ {
					gr := out.Grad[i*n : (i+1)*n]
					for j, g := range gr {
						b.Grad[j] += g
					}
				}
			}
		}
	}
	return out
}

// AddRow broadcasts a 1×n row vector onto every row of a (m×n).
func AddRow(a, row *Tensor) *Tensor {
	if row.Rows != 1 || row.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: AddRow %dx%d + %dx%d", a.Rows, a.Cols, row.Rows, row.Cols))
	}
	out := child(a.Rows, a.Cols, a, row)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[i*a.Cols+j] = a.Data[i*a.Cols+j] + row.Data[j]
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i]
				}
			}
			if row.requiresGrad {
				row.ensureGrad()
				for i := 0; i < a.Rows; i++ {
					for j := 0; j < a.Cols; j++ {
						row.Grad[j] += out.Grad[i*a.Cols+j]
					}
				}
			}
		}
	}
	return out
}

// ReLU returns max(a, 0).
func ReLU(a *Tensor) *Tensor {
	out := child(a.Rows, a.Cols, a)
	for i, v := range a.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i, v := range a.Data {
				if v > 0 {
					a.Grad[i] += out.Grad[i]
				}
			}
		}
	}
	return out
}

// Tanh returns tanh(a).
func Tanh(a *Tensor) *Tensor {
	out := child(a.Rows, a.Cols, a)
	for i, v := range a.Data {
		out.Data[i] = math.Tanh(v)
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i := range out.Data {
				a.Grad[i] += out.Grad[i] * (1 - out.Data[i]*out.Data[i])
			}
		}
	}
	return out
}

// Exp returns e^a.
func Exp(a *Tensor) *Tensor {
	out := child(a.Rows, a.Cols, a)
	for i, v := range a.Data {
		out.Data[i] = math.Exp(v)
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i := range out.Data {
				a.Grad[i] += out.Grad[i] * out.Data[i]
			}
		}
	}
	return out
}

// Clamp limits values to [lo, hi]; gradients pass through only inside the
// range (straight-through at the boundary is zeroed, as in PPO clipping).
func Clamp(a *Tensor, lo, hi float64) *Tensor {
	out := child(a.Rows, a.Cols, a)
	for i, v := range a.Data {
		out.Data[i] = math.Min(math.Max(v, lo), hi)
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i, v := range a.Data {
				if v > lo && v < hi {
					a.Grad[i] += out.Grad[i]
				}
			}
		}
	}
	return out
}

// Min returns elementwise min(a, b); the gradient flows to the smaller input
// (ties: a).
func Min(a, b *Tensor) *Tensor {
	sameShape(a, b, "Min")
	out := child(a.Rows, a.Cols, a, b)
	for i := range out.Data {
		out.Data[i] = math.Min(a.Data[i], b.Data[i])
	}
	if out.requiresGrad {
		out.backward = func() {
			for i := range out.Grad {
				if a.Data[i] <= b.Data[i] {
					if a.requiresGrad {
						a.ensureGrad()
						a.Grad[i] += out.Grad[i]
					}
				} else if b.requiresGrad {
					b.ensureGrad()
					b.Grad[i] += out.Grad[i]
				}
			}
		}
	}
	return out
}

// GroupedAttention computes block-diagonal scaled dot-product attention:
// rows are partitioned into disjoint groups (the PM trees of the paper's
// sparse tree-local attention), and each row attends only within its group.
// Equivalent to full attention under a same-group mask, but O(Σ s_g²·d)
// instead of O(n²·d): scores, softmax, and the value mix are computed per
// group only. q, k, v are n×d; groups must cover every row exactly once.
// The backward closure retains groups until Backward runs — callers must
// not mutate or recycle the partition while the graph is alive.
func GroupedAttention(q, k, v *Tensor, groups [][]int, scale float64) *Tensor {
	if q.Rows != k.Rows || q.Rows != v.Rows || q.Cols != k.Cols {
		panic(fmt.Sprintf("tensor: GroupedAttention q %dx%d k %dx%d v %dx%d",
			q.Rows, q.Cols, k.Rows, k.Cols, v.Rows, v.Cols))
	}
	d := q.Cols
	dv := v.Cols
	out := child(q.Rows, dv, q, k, v)
	// probs stores each group's attention matrix back to back (row-major
	// s×s blocks) for the backward pass.
	total := 0
	for _, g := range groups {
		total += len(g) * len(g)
	}
	probs := graphAlloc(total)
	maxS := 0
	for _, g := range groups {
		if len(g) > maxS {
			maxS = len(g)
		}
	}
	scores := graphAlloc(maxS)
	off := 0
	for _, g := range groups {
		s := len(g)
		for a, r1 := range g {
			qr := q.Data[r1*d : (r1+1)*d]
			for b, r2 := range g {
				kr := k.Data[r2*d : (r2+1)*d]
				dp := 0.0
				for j, qv := range qr {
					dp += qv * kr[j]
				}
				scores[b] = dp * scale
			}
			prow := probs[off+a*s : off+(a+1)*s]
			rowSoftmaxInto(scores[:s], prow)
			or := out.Data[r1*dv : (r1+1)*dv]
			for b, p := range prow {
				if p == 0 {
					continue
				}
				vr := v.Data[g[b]*dv : (g[b]+1)*dv]
				for j, vv := range vr {
					or[j] += p * vv
				}
			}
		}
		off += s * s
	}
	if out.requiresGrad {
		out.backward = func() {
			if q.requiresGrad {
				q.ensureGrad()
			}
			if k.requiresGrad {
				k.ensureGrad()
			}
			if v.requiresGrad {
				v.ensureGrad()
			}
			dp := graphAlloc(maxS)
			off := 0
			for _, g := range groups {
				s := len(g)
				for a, r1 := range g {
					gr := out.Grad[r1*dv : (r1+1)*dv]
					prow := probs[off+a*s : off+(a+1)*s]
					// dP[b] = dOut[r1]·v[g[b]], then dS = P⊙(dP - Σ dP·P).
					rowdot := 0.0
					for b, p := range prow {
						vr := v.Data[g[b]*dv : (g[b]+1)*dv]
						sum := 0.0
						for j, gv := range gr {
							sum += gv * vr[j]
						}
						dp[b] = sum
						rowdot += sum * p
					}
					qr := q.Data[r1*d : (r1+1)*d]
					for b, p := range prow {
						if v.requiresGrad && p != 0 {
							vgr := v.Grad[g[b]*dv : (g[b]+1)*dv]
							for j, gv := range gr {
								vgr[j] += p * gv
							}
						}
						ds := p * (dp[b] - rowdot) * scale
						if ds == 0 {
							continue
						}
						if q.requiresGrad {
							kr := k.Data[g[b]*d : (g[b]+1)*d]
							qgr := q.Grad[r1*d : (r1+1)*d]
							for j, kv := range kr {
								qgr[j] += ds * kv
							}
						}
						if k.requiresGrad {
							kgr := k.Grad[g[b]*d : (g[b]+1)*d]
							for j, qv := range qr {
								kgr[j] += ds * qv
							}
						}
					}
				}
				off += s * s
			}
		}
	}
	return out
}

// rowSoftmaxInto computes a numerically stable softmax of src row into dst.
func rowSoftmaxInto(src, dst []float64) {
	maxv := math.Inf(-1)
	for _, v := range src {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	for i, v := range src {
		e := math.Exp(v - maxv)
		dst[i] = e
		sum += e
	}
	if sum == 0 {
		for i := range dst {
			dst[i] = 1 / float64(len(dst))
		}
		return
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// Softmax applies a row-wise softmax.
func Softmax(a *Tensor) *Tensor {
	out := child(a.Rows, a.Cols, a)
	for i := 0; i < a.Rows; i++ {
		rowSoftmaxInto(a.Data[i*a.Cols:(i+1)*a.Cols], out.Data[i*a.Cols:(i+1)*a.Cols])
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i := 0; i < a.Rows; i++ {
				o := out.Data[i*a.Cols : (i+1)*a.Cols]
				g := out.Grad[i*a.Cols : (i+1)*a.Cols]
				dot := 0.0
				for j := range o {
					dot += o[j] * g[j]
				}
				ag := a.Grad[i*a.Cols : (i+1)*a.Cols]
				for j := range o {
					ag[j] += o[j] * (g[j] - dot)
				}
			}
		}
	}
	return out
}

// LogSoftmax applies a row-wise log-softmax.
func LogSoftmax(a *Tensor) *Tensor {
	out := child(a.Rows, a.Cols, a)
	soft := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		src := a.Data[i*a.Cols : (i+1)*a.Cols]
		rowSoftmaxInto(src, soft)
		dst := out.Data[i*a.Cols : (i+1)*a.Cols]
		for j := range soft {
			dst[j] = math.Log(soft[j] + 1e-300)
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i := 0; i < a.Rows; i++ {
				o := out.Data[i*a.Cols : (i+1)*a.Cols]
				g := out.Grad[i*a.Cols : (i+1)*a.Cols]
				sumG := 0.0
				for j := range g {
					sumG += g[j]
				}
				ag := a.Grad[i*a.Cols : (i+1)*a.Cols]
				for j := range g {
					ag[j] += g[j] - math.Exp(o[j])*sumG
				}
			}
		}
	}
	return out
}

// MaskedFill writes fill into positions where mask is false (mask is data,
// not differentiated) — used to hide illegal actions and non-tree attention
// pairs. mask is row-major with the same shape as a.
func MaskedFill(a *Tensor, mask []bool, fill float64) *Tensor {
	if len(mask) != len(a.Data) {
		panic(fmt.Sprintf("tensor: MaskedFill mask %d vs data %d", len(mask), len(a.Data)))
	}
	out := child(a.Rows, a.Cols, a)
	for i, v := range a.Data {
		if mask[i] {
			out.Data[i] = v
		} else {
			out.Data[i] = fill
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i := range out.Grad {
				if mask[i] {
					a.Grad[i] += out.Grad[i]
				}
			}
		}
	}
	return out
}

// LayerNorm normalizes each row to zero mean and unit variance, then applies
// the affine parameters gamma and beta (1×n each).
func LayerNorm(a, gamma, beta *Tensor, eps float64) *Tensor {
	if gamma.Cols != a.Cols || beta.Cols != a.Cols || gamma.Rows != 1 || beta.Rows != 1 {
		panic("tensor: LayerNorm parameter shape")
	}
	out := child(a.Rows, a.Cols, a, gamma, beta)
	n := float64(a.Cols)
	means := graphAlloc(a.Rows)
	invstd := graphAlloc(a.Rows)
	xhat := graphAlloc(len(a.Data))
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		m := 0.0
		for _, v := range row {
			m += v
		}
		m /= n
		va := 0.0
		for _, v := range row {
			va += (v - m) * (v - m)
		}
		va /= n
		is := 1 / math.Sqrt(va+eps)
		means[i], invstd[i] = m, is
		for j, v := range row {
			x := (v - m) * is
			xhat[i*a.Cols+j] = x
			out.Data[i*a.Cols+j] = x*gamma.Data[j] + beta.Data[j]
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			var gp []float64
			if a.requiresGrad {
				gp = graphAlloc(a.Cols)
			}
			for i := 0; i < a.Rows; i++ {
				g := out.Grad[i*a.Cols : (i+1)*a.Cols]
				xh := xhat[i*a.Cols : (i+1)*a.Cols]
				if gamma.requiresGrad {
					gamma.ensureGrad()
					for j := range g {
						gamma.Grad[j] += g[j] * xh[j]
					}
				}
				if beta.requiresGrad {
					beta.ensureGrad()
					for j := range g {
						beta.Grad[j] += g[j]
					}
				}
				if a.requiresGrad {
					a.ensureGrad()
					// dL/dx = (gamma*invstd/n) * (n*g' - sum(g') - xhat*sum(g'*xhat))
					sumG, sumGX := 0.0, 0.0
					for j := range g {
						gp[j] = g[j] * gamma.Data[j]
						sumG += gp[j]
						sumGX += gp[j] * xh[j]
					}
					ag := a.Grad[i*a.Cols : (i+1)*a.Cols]
					for j := range g {
						ag[j] += invstd[i] / n * (n*gp[j] - sumG - xh[j]*sumGX)
					}
				}
			}
		}
	}
	return out
}

// Mean reduces to a 1×1 tensor.
func Mean(a *Tensor) *Tensor {
	out := child(1, 1, a)
	s := 0.0
	for _, v := range a.Data {
		s += v
	}
	n := float64(len(a.Data))
	if n == 0 {
		n = 1
	}
	out.Data[0] = s / n
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			g := out.Grad[0] / n
			for i := range a.Grad {
				a.Grad[i] += g
			}
		}
	}
	return out
}

// Sum reduces to a 1×1 tensor.
func Sum(a *Tensor) *Tensor {
	out := child(1, 1, a)
	for _, v := range a.Data {
		out.Data[0] += v
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i := range a.Grad {
				a.Grad[i] += out.Grad[0]
			}
		}
	}
	return out
}

// MeanRows reduces a (m×n) to its column-mean (1×n).
func MeanRows(a *Tensor) *Tensor {
	out := child(1, a.Cols, a)
	m := float64(a.Rows)
	if m == 0 {
		m = 1
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[j] += a.Data[i*a.Cols+j] / m
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i := 0; i < a.Rows; i++ {
				for j := 0; j < a.Cols; j++ {
					a.Grad[i*a.Cols+j] += out.Grad[j] / m
				}
			}
		}
	}
	return out
}

// GatherRows selects rows by index into a new (len(idx)×n) tensor.
func GatherRows(a *Tensor, idx []int) *Tensor {
	out := child(len(idx), a.Cols, a)
	for r, i := range idx {
		if i < 0 || i >= a.Rows {
			panic(fmt.Sprintf("tensor: GatherRows index %d of %d", i, a.Rows))
		}
		copy(out.Data[r*a.Cols:(r+1)*a.Cols], a.Data[i*a.Cols:(i+1)*a.Cols])
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for r, i := range idx {
				for j := 0; j < a.Cols; j++ {
					a.Grad[i*a.Cols+j] += out.Grad[r*a.Cols+j]
				}
			}
		}
	}
	return out
}

// PickPerRow selects one column per row, producing (m×1): out[i] = a[i, idx[i]].
func PickPerRow(a *Tensor, idx []int) *Tensor {
	if len(idx) != a.Rows {
		panic("tensor: PickPerRow needs one index per row")
	}
	out := child(a.Rows, 1, a)
	for i, j := range idx {
		if j < 0 || j >= a.Cols {
			panic(fmt.Sprintf("tensor: PickPerRow index %d of %d", j, a.Cols))
		}
		out.Data[i] = a.Data[i*a.Cols+j]
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i, j := range idx {
				a.Grad[i*a.Cols+j] += out.Grad[i]
			}
		}
	}
	return out
}

// ConcatCols concatenates a (m×p) and b (m×q) into (m×(p+q)).
func ConcatCols(a, b *Tensor) *Tensor {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: ConcatCols rows %d vs %d", a.Rows, b.Rows))
	}
	out := child(a.Rows, a.Cols+b.Cols, a, b)
	for i := 0; i < a.Rows; i++ {
		copy(out.Data[i*out.Cols:], a.Data[i*a.Cols:(i+1)*a.Cols])
		copy(out.Data[i*out.Cols+a.Cols:], b.Data[i*b.Cols:(i+1)*b.Cols])
	}
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i := 0; i < a.Rows; i++ {
					for j := 0; j < a.Cols; j++ {
						a.Grad[i*a.Cols+j] += out.Grad[i*out.Cols+j]
					}
				}
			}
			if b.requiresGrad {
				b.ensureGrad()
				for i := 0; i < b.Rows; i++ {
					for j := 0; j < b.Cols; j++ {
						b.Grad[i*b.Cols+j] += out.Grad[i*out.Cols+a.Cols+j]
					}
				}
			}
		}
	}
	return out
}

// ConcatRows stacks a (p×n) over b (q×n) into ((p+q)×n).
func ConcatRows(a, b *Tensor) *Tensor {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: ConcatRows cols %d vs %d", a.Cols, b.Cols))
	}
	out := child(a.Rows+b.Rows, a.Cols, a, b)
	copy(out.Data, a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i := range a.Data {
					a.Grad[i] += out.Grad[i]
				}
			}
			if b.requiresGrad {
				b.ensureGrad()
				off := len(a.Data)
				for i := range b.Data {
					b.Grad[i] += out.Grad[off+i]
				}
			}
		}
	}
	return out
}

// Transpose returns aᵀ.
func Transpose(a *Tensor) *Tensor {
	out := child(a.Cols, a.Rows, a)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[j*a.Rows+i] = a.Data[i*a.Cols+j]
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i := 0; i < a.Rows; i++ {
				for j := 0; j < a.Cols; j++ {
					a.Grad[i*a.Cols+j] += out.Grad[j*a.Rows+i]
				}
			}
		}
	}
	return out
}

// Reshape reinterprets a as rows×cols (same element count), preserving
// gradients. Data is copied so the graph stays append-only.
func Reshape(a *Tensor, rows, cols int) *Tensor {
	if rows*cols != a.Rows*a.Cols {
		panic(fmt.Sprintf("tensor: Reshape %dx%d -> %dx%d", a.Rows, a.Cols, rows, cols))
	}
	out := child(rows, cols, a)
	copy(out.Data, a.Data)
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i]
			}
		}
	}
	return out
}
