package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randTensor(rng *rand.Rand, rows, cols int) *Tensor {
	t := New(rows, cols)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

func wantClose(t *testing.T, name string, got, want *Tensor) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d != %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("%s: element %d: got %g want %g", name, i, got.Data[i], want.Data[i])
		}
	}
}

// TestArenaMatchesGraphOps checks every arena op against its autograd
// counterpart on random inputs.
func TestArenaMatchesGraphOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var ar Arena
	for trial := 0; trial < 20; trial++ {
		ar.Reset()
		m, k, n := 1+rng.Intn(17), 1+rng.Intn(17), 1+rng.Intn(17)
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		bt := randTensor(rng, n, k)
		wantClose(t, "MatMul", ar.MatMul(a, b), MatMul(a, b))
		wantClose(t, "MatMulT", ar.MatMulT(a, bt), MatMulT(a, bt))

		c := randTensor(rng, m, k)
		wantClose(t, "Add", ar.Add(a, c), Add(a, c))
		row := randTensor(rng, 1, k)
		wantClose(t, "AddRow", ar.AddRow(a, row), AddRow(a, row))
		wantClose(t, "Scale", ar.Scale(a, 2.5), Scale(a, 2.5))
		wantClose(t, "ReLU", ar.ReLU(a), ReLU(a))
		wantClose(t, "Softmax", ar.Softmax(a), Softmax(a))
		wantClose(t, "ConcatCols", ar.ConcatCols(a, c), ConcatCols(a, c))
		wantClose(t, "ConcatRows", ar.ConcatRows(a, c), ConcatRows(a, c))
		wantClose(t, "Transpose", ar.Transpose(a), Transpose(a))
		wantClose(t, "MeanRows", ar.MeanRows(a), MeanRows(a))
		wantClose(t, "Reshape", ar.Reshape(a, k, m), Reshape(a, k, m))

		gamma := randTensor(rng, 1, k)
		beta := randTensor(rng, 1, k)
		wantClose(t, "LayerNorm", ar.LayerNorm(a, gamma, beta, 1e-5), LayerNorm(a, gamma, beta, 1e-5))

		mask := make([]bool, m*k)
		for i := range mask {
			mask[i] = rng.Intn(2) == 0
		}
		wantClose(t, "MaskedFill", ar.MaskedFill(a, mask, -1e9), MaskedFill(a, mask, -1e9))

		idx := make([]int, 1+rng.Intn(5))
		for i := range idx {
			idx[i] = rng.Intn(m)
		}
		wantClose(t, "GatherRows", ar.GatherRows(a, idx), GatherRows(a, idx))

		lo := rng.Intn(m)
		hi := lo + rng.Intn(m-lo+1)
		rows := ar.Rows(a, lo, hi)
		want := New(hi-lo, k)
		copy(want.Data, a.Data[lo*k:hi*k])
		wantClose(t, "Rows", rows, want)

		rep := ar.RepeatRow(row, m)
		ones := New(m, 1)
		for i := range ones.Data {
			ones.Data[i] = 1
		}
		wantClose(t, "RepeatRow", rep, MatMul(ones, row))
	}
}

// TestMatMulParallelMatchesSerial exercises the goroutine fan-out path of
// the blocked kernel (above mmParallelFlops) against a naive multiply.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, k, n := 200, 80, 64 // m*k*n > mmParallelFlops, m > 2*mmBlock
	a := randTensor(rng, m, k)
	b := randTensor(rng, k, n)
	got := MatMul(a, b)
	want := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for kk := 0; kk < k; kk++ {
				s += a.Data[i*k+kk] * b.Data[kk*n+j]
			}
			want.Data[i*n+j] = s
		}
	}
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
			t.Fatalf("blocked matmul element %d: got %g want %g", i, got.Data[i], want.Data[i])
		}
	}
}

// TestArenaViewsDoNotCorruptStorage regression-tests that recycling a view
// header never zeroes the storage it aliased.
func TestArenaViewsDoNotCorruptStorage(t *testing.T) {
	var ar Arena
	rng := rand.New(rand.NewSource(3))
	a := randTensor(rng, 4, 4)
	v := ar.Reshape(a, 2, 8)
	_ = v
	ar.Reset()
	// Allocate storage, then take a view, then allocate more storage: the
	// view slot must not be reused as a zeroed buffer over live data.
	x := ar.FromFlat(2, 2, []float64{1, 2, 3, 4})
	_ = ar.Rows(x, 0, 1)
	y := ar.Tensor(2, 2)
	_ = y
	if x.Data[0] != 1 || x.Data[3] != 4 {
		t.Fatalf("view recycling corrupted storage: %v", x.Data)
	}
	ar.Reset()
	x2 := ar.FromFlat(2, 2, []float64{5, 6, 7, 8})
	_ = ar.Rows(x2, 1, 2)
	_ = ar.Tensor(2, 2)
	if x2.Data[0] != 5 || x2.Data[3] != 8 {
		t.Fatalf("view recycling corrupted storage after reset: %v", x2.Data)
	}
}

// TestArenaSteadyStateZeroAlloc verifies the bump allocator reaches zero
// allocations once warm.
func TestArenaSteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var ar Arena
	a := randTensor(rng, 8, 8)
	b := randTensor(rng, 8, 8)
	run := func() {
		ar.Reset()
		x := ar.MatMul(a, b)
		x = ar.ReLU(x)
		x = ar.Softmax(x)
		_ = ar.MeanRows(x)
	}
	run() // warm the pool
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Fatalf("steady-state arena forward allocates %v times", allocs)
	}
}
