package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// refQuantLinear computes the quantized linear the slow, obvious way: quantize
// activations per row and weights per channel with the same round-half-up
// rule, dot in plain int64 arithmetic, dequantize with the bias folded in.
// The packed kernel must match it bit for bit.
func refQuantLinear(x *Tensor, qw *QuantizedWeight, bias *Tensor) *Tensor {
	m, k, n := x.Rows, x.Cols, qw.Out
	out := New(m, n)
	xq := make([]int64, k)
	for i := 0; i < m; i++ {
		row := x.Data[i*k : (i+1)*k]
		maxabs := 0.0
		for _, v := range row {
			if math.Abs(v) > maxabs {
				maxabs = math.Abs(v)
			}
		}
		scale := maxabs / qMax
		inv := 0.0
		if maxabs > 0 {
			inv = qMax / maxabs
		}
		for kk, v := range row {
			xq[kk] = int64(math.Floor(v*inv + 0.5))
		}
		for j := 0; j < n; j++ {
			ch := qw.Q[j*k : (j+1)*k]
			dot := int64(0)
			for kk := range xq {
				dot += xq[kk] * int64(ch[kk])
			}
			b := 0.0
			if bias != nil {
				b = bias.Data[j]
			}
			out.Data[i*n+j] = b + scale*qw.Scale[j]*float64(dot)
		}
	}
	return out
}

func TestLinearQ8MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ar := &Arena{}
	// Shapes cover partial last words (k % 4 != 0), channel remainders
	// (n % 4 != 0), single rows, and single outputs.
	for _, s := range []struct{ m, k, n int }{
		{5, 14, 64}, {7, 32, 32}, {3, 64, 32}, {2, 65, 64},
		{1, 32, 1}, {4, 1, 3}, {6, 5, 7}, {9, 8, 8},
	} {
		x := randTensor(rng, s.m, s.k)
		w := randTensor(rng, s.k, s.n)
		bias := randTensor(rng, 1, s.n)
		qw := QuantizeWeight(w)
		ar.Reset()
		got := ar.LinearQ8(x, qw, bias)
		want := refQuantLinear(x, qw, bias)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%dx%dx%d cell %d: kernel %v reference %v",
					s.m, s.k, s.n, i, got.Data[i], want.Data[i])
			}
		}
		// Without bias (MatMulQ8 with nil).
		got = ar.MatMulQ8(ar.QuantizeActs(x), qw, nil)
		want = refQuantLinear(x, qw, nil)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%dx%dx%d nil-bias cell %d: kernel %v reference %v",
					s.m, s.k, s.n, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestLinearQ8ApproximatesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ar := &Arena{}
	m, k, n := 40, 32, 64
	x := randTensor(rng, m, k)
	w := randTensor(rng, k, n)
	bias := randTensor(rng, 1, n)
	qw := QuantizeWeight(w)
	got := ar.LinearQ8(x, qw, bias)
	want := ar.AddRowInPlace(ar.MatMul(x, w), bias)
	// Error budget: symmetric 7-bit quantization of both operands gives a
	// relative step of ~1/63 each; over a k=32 dot the accumulated error
	// stays well under 8% of the row magnitude.
	for i := 0; i < m; i++ {
		norm := 0.0
		for j := 0; j < n; j++ {
			norm += want.Data[i*n+j] * want.Data[i*n+j]
		}
		norm = math.Sqrt(norm / float64(n))
		for j := 0; j < n; j++ {
			diff := math.Abs(got.Data[i*n+j] - want.Data[i*n+j])
			if diff > 0.08*norm+1e-9 {
				t.Fatalf("cell (%d,%d): quantized %v float %v (row norm %v)",
					i, j, got.Data[i*n+j], want.Data[i*n+j], norm)
			}
		}
	}
}

func TestQuantizeWeightRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := randTensor(rng, 32, 16)
	qw := QuantizeWeight(w)
	// Canonical form → NewQuantizedWeight must reproduce the packed state.
	qw2, err := NewQuantizedWeight(qw.In, qw.Out, qw.Q, qw.Scale)
	if err != nil {
		t.Fatalf("NewQuantizedWeight: %v", err)
	}
	for i := range qw.packed {
		if qw.packed[i] != qw2.packed[i] {
			t.Fatalf("packed word %d differs after round trip", i)
		}
	}
	// Dequantize stays within half a quantization step of the original.
	deq := qw.Dequantize()
	for j := 0; j < qw.Out; j++ {
		step := qw.Scale[j]
		for i := 0; i < qw.In; i++ {
			diff := math.Abs(deq.Data[i*qw.Out+j] - w.Data[i*qw.Out+j])
			if diff > step/2+1e-12 {
				t.Fatalf("dequantized (%d,%d) off by %v > step/2 %v", i, j, diff, step/2)
			}
		}
	}
}

func TestNewQuantizedWeightRejectsBadInput(t *testing.T) {
	if _, err := NewQuantizedWeight(4, 2, make([]int8, 7), make([]float64, 2)); err == nil {
		t.Fatal("want error for wrong value count")
	}
	if _, err := NewQuantizedWeight(4, 2, make([]int8, 8), make([]float64, 3)); err == nil {
		t.Fatal("want error for wrong scale count")
	}
	if _, err := NewQuantizedWeight(0, 2, nil, nil); err == nil {
		t.Fatal("want error for zero dimension")
	}
	bad := make([]int8, 8)
	bad[3] = 127 // outside the ±63 lane-safe range
	if _, err := NewQuantizedWeight(4, 2, bad, make([]float64, 2)); err == nil {
		t.Fatal("want error for out-of-range quantized value")
	}
}

func TestLinearQ8ZeroRow(t *testing.T) {
	ar := &Arena{}
	x := New(2, 8) // all-zero activations: scale 0, result must be exactly bias
	w := randTensor(rand.New(rand.NewSource(5)), 8, 4)
	bias := FromSlice(1, 4, []float64{1, -2, 3, -4})
	got := ar.LinearQ8(x, w2q(w), bias)
	for i := 0; i < 2; i++ {
		for j := 0; j < 4; j++ {
			if got.Data[i*4+j] != bias.Data[j] {
				t.Fatalf("zero row cell (%d,%d) = %v, want bias %v", i, j, got.Data[i*4+j], bias.Data[j])
			}
		}
	}
}

func w2q(w *Tensor) *QuantizedWeight { return QuantizeWeight(w) }

func TestLinearQ8SteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ar := &Arena{}
	x := randTensor(rng, 64, 32)
	qw := QuantizeWeight(randTensor(rng, 32, 64))
	bias := randTensor(rng, 1, 64)
	// Warm the pools.
	for i := 0; i < 3; i++ {
		ar.Reset()
		ar.LinearQ8(x, qw, bias)
	}
	allocs := testing.AllocsPerRun(50, func() {
		ar.Reset()
		ar.LinearQ8(x, qw, bias)
	})
	if allocs != 0 {
		t.Fatalf("LinearQ8 steady state allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkLinearQ8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range []struct{ m, k, n int }{
		{300, 14, 64}, {300, 64, 32}, {300, 32, 64}, {300, 32, 32}, {2000, 32, 64},
	} {
		b.Run(benchShapeName(s.m, s.k, s.n), func(b *testing.B) {
			ar := &Arena{}
			x := randTensor(rng, s.m, s.k)
			qw := QuantizeWeight(randTensor(rng, s.k, s.n))
			bias := randTensor(rng, 1, s.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ar.Reset()
				ar.LinearQ8(x, qw, bias)
			}
		})
	}
}

// BenchmarkLinearF64 is the float path LinearQ8 replaces (zeroed tensor +
// blocked matmul + bias broadcast), at the same shapes for comparison.
func BenchmarkLinearF64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range []struct{ m, k, n int }{
		{300, 14, 64}, {300, 64, 32}, {300, 32, 64}, {300, 32, 32}, {2000, 32, 64},
	} {
		b.Run(benchShapeName(s.m, s.k, s.n), func(b *testing.B) {
			ar := &Arena{}
			x := randTensor(rng, s.m, s.k)
			w := randTensor(rng, s.k, s.n)
			bias := randTensor(rng, 1, s.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ar.Reset()
				ar.AddRowInPlace(ar.MatMul(x, w), bias)
			}
		})
	}
}

func benchShapeName(m, k, n int) string {
	return itoa(m) + "x" + itoa(k) + "x" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
