package tensor

import (
	"fmt"
	"math"
)

// Row-sliced kernel entry points for the incremental inference path: each
// recomputes a selected subset of output rows of a cached activation matrix
// in place, bit-identically to the full kernel that produced it.
//
// Why bit-identical: every kernel here accumulates each output row in the
// same order as its full counterpart. matMulRange's (i,k) blocking walks kk
// strictly ascending for any fixed row regardless of the block shape or the
// two-rows-per-pass pairing, so a plain kk-ascending dot reproduces the same
// float additions in the same order. The only textual difference is the
// zero-skip: the paired kernel skips a kk only when BOTH rows' activations
// are zero, the row kernel when its own is — but a skipped term is av·bv
// with av == ±0, which for finite bv is ±0.0, and adding ±0.0 to any
// accumulator never changes its bits (the accumulator starts at +0.0, and
// IEEE round-to-nearest gives +0 + ±0 = +0, x + ±0 = x). The int8 kernel is
// exact integer arithmetic per row, and activation quantization is per-row
// independent. All entry points assume finite inputs, which the policy's
// normalized features and finite parameters guarantee — a ±Inf weight would
// make skip-vs-add observable (0·Inf = NaN), and would have poisoned
// training long before inference.
//
// The entry points are Arena methods for discoverability next to their full
// counterparts; only LinearQ8Rows draws (pooled, steady-state-free) scratch
// from the arena.

// LinearRows recomputes dst rows for the given row ids as x·w + bias — the
// row slice of Linear.Infer's float path (MatMul + AddRowInPlace). dst must
// be the cached full output of that computation; bias may be nil for a pure
// matmul patch. rows need not be sorted or unique.
func (ar *Arena) LinearRows(dst, x, w, bias *Tensor, rows []int) {
	k, n := x.Cols, w.Cols
	if w.Rows != k || dst.Cols != n || dst.Rows != x.Rows {
		panic(fmt.Sprintf("tensor: LinearRows x %dx%d · w %dx%d -> dst %dx%d",
			x.Rows, x.Cols, w.Rows, w.Cols, dst.Rows, dst.Cols))
	}
	if bias != nil && (bias.Rows != 1 || bias.Cols != n) {
		panic(fmt.Sprintf("tensor: LinearRows bias %dx%d for %d outputs", bias.Rows, bias.Cols, n))
	}
	for _, i := range rows {
		or := dst.Data[i*n : (i+1)*n : (i+1)*n]
		for j := range or {
			or[j] = 0
		}
		xr := x.Data[i*k : (i+1)*k : (i+1)*k]
		for kk, av := range xr {
			if av == 0 {
				continue
			}
			br := w.Data[kk*n : (kk+1)*n : (kk+1)*n]
			for j, bv := range br {
				or[j] += av * bv
			}
		}
		if bias != nil {
			for j := range or {
				or[j] += bias.Data[j]
			}
		}
	}
}

// LinearQ8Rows recomputes dst rows for the given row ids through the fused
// int8 path — the row slice of LinearQ8 (per-row dynamic activation
// quantization, packed-lane matmul, dequantize with the bias folded in).
// Activation quantization is per-row independent, so each patched row is
// bit-identical to its slot in a full LinearQ8. bias may be nil. Scratch is
// pooled arena storage (valid usage within one Reset cycle, zero steady-
// state allocations).
func (ar *Arena) LinearQ8Rows(dst, x *Tensor, qw *QuantizedWeight, bias *Tensor, rows []int) {
	k, n := qw.In, qw.Out
	if x.Cols != k || dst.Cols != n || dst.Rows != x.Rows {
		panic(fmt.Sprintf("tensor: LinearQ8Rows x %dx%d · quantized %dx%d -> dst %dx%d",
			x.Rows, x.Cols, k, n, dst.Rows, dst.Cols))
	}
	var biasData []float64
	if bias != nil {
		if bias.Rows != 1 || bias.Cols != n {
			panic(fmt.Sprintf("tensor: LinearQ8Rows bias %dx%d for %d outputs", bias.Rows, bias.Cols, n))
		}
		biasData = bias.Data
	} else {
		biasData = ar.Tensor(1, n).Data
	}
	qa := ar.quantActs(1, k)
	for _, i := range rows {
		quantPackRows(qa.packed, qa.scale, qa.sum, x.Data[i*k:(i+1)*k], 1, k, qa.kp)
		matMulQ8Into1(dst.Data[i*n:(i+1)*n], qa, qw, biasData, k, n)
	}
}

// matMulQ8Into1 computes one dequantized output row from a single packed
// activation row through the shared range kernel.
func matMulQ8Into1(dstRow []float64, qa *QuantActs, qw *QuantizedWeight, bias []float64, k, n int) {
	matMulQ8Range(dstRow, qa.packed, qa.scale, qa.sum, qw.packed, qw.Scale, qw.colSum, bias, 0, 1, k, qa.kp, n)
}

// AddRows recomputes dst rows as a + b for the given row ids — the row slice
// of Add (residual connections).
func (ar *Arena) AddRows(dst, a, b *Tensor, rows []int) {
	if a.Rows != b.Rows || a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: AddRows %dx%d + %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	n := a.Cols
	for _, i := range rows {
		or := dst.Data[i*n : (i+1)*n : (i+1)*n]
		av := a.Data[i*n : (i+1)*n : (i+1)*n]
		bv := b.Data[i*n : (i+1)*n : (i+1)*n]
		for j := range or {
			or[j] = av[j] + bv[j]
		}
	}
}

// ReLURowsInPlace rectifies the given rows of a in place — the row slice of
// ReLUInPlace.
func (ar *Arena) ReLURowsInPlace(a *Tensor, rows []int) {
	n := a.Cols
	for _, i := range rows {
		r := a.Data[i*n : (i+1)*n : (i+1)*n]
		for j, v := range r {
			if v <= 0 {
				r[j] = 0
			}
		}
	}
}

// LayerNormRows recomputes dst rows for the given row ids — the row slice of
// LayerNorm (row-wise statistics, so rows are independent).
func (ar *Arena) LayerNormRows(dst, a, gamma, beta *Tensor, eps float64, rows []int) {
	if gamma.Cols != a.Cols || beta.Cols != a.Cols || gamma.Rows != 1 || beta.Rows != 1 {
		panic("tensor: LayerNormRows parameter shape")
	}
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: LayerNormRows %dx%d -> dst %dx%d", a.Rows, a.Cols, dst.Rows, dst.Cols))
	}
	n := float64(a.Cols)
	for _, i := range rows {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		m := 0.0
		for _, v := range row {
			m += v
		}
		m /= n
		va := 0.0
		for _, v := range row {
			va += (v - m) * (v - m)
		}
		va /= n
		is := 1 / math.Sqrt(va+eps)
		o := dst.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			o[j] = (v-m)*is*gamma.Data[j] + beta.Data[j]
		}
	}
}

// GroupedAttentionRows recomputes the output rows of the given groups of a
// cached GroupedAttention result in place. Groups are disjoint and each
// row's attention spans only its group, so recomputing the groups that
// contain a changed row (from patched q/k/v) leaves every other row's bits
// untouched and reproduces the full kernel's values exactly (the full pass
// computes each group independently too, serial or parallel). out rows of
// the given groups are zeroed first because the kernel accumulates.
func (ar *Arena) GroupedAttentionRows(out, q, k, v *Tensor, groups [][]int, scale float64) {
	if q.Rows != k.Rows || q.Rows != v.Rows || q.Cols != k.Cols {
		panic(fmt.Sprintf("tensor: GroupedAttentionRows q %dx%d k %dx%d v %dx%d",
			q.Rows, q.Cols, k.Rows, k.Cols, v.Rows, v.Cols))
	}
	if out.Rows != q.Rows || out.Cols != v.Cols {
		panic(fmt.Sprintf("tensor: GroupedAttentionRows out %dx%d for %d rows of %d",
			out.Rows, out.Cols, q.Rows, v.Cols))
	}
	dv := v.Cols
	maxS := 0
	for _, g := range groups {
		if len(g) > maxS {
			maxS = len(g)
		}
		for _, r := range g {
			or := out.Data[r*dv : (r+1)*dv : (r+1)*dv]
			for j := range or {
				or[j] = 0
			}
		}
	}
	if maxS == 0 {
		return
	}
	scratch := ar.Uninit(1, 2*maxS).Data
	groupedAttnRange(out, q, k, v, groups, scale, scratch)
}
