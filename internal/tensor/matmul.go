package tensor

import (
	"runtime"
	"sync"
)

// Cache-blocked matrix-multiply kernels shared by the autograd ops and the
// inference arena. The i-k-j loop order streams the B rows sequentially;
// blocking over (i, k) keeps the active B panel resident in cache while a
// block of A rows consumes it. Large products additionally fan out across
// GOMAXPROCS goroutines.

const (
	// mmBlock is the block edge (rows of A × rows of B per panel). 64×64
	// float64 panels are 32 KiB — comfortably L1/L2 resident.
	mmBlock = 64
	// mmParallelFlops is the m*k*n threshold above which matMulInto splits
	// row blocks across goroutines. Below it the spawn overhead dominates.
	mmParallelFlops = 1 << 18
)

// matMulInto computes dst = a·b for row-major a (m×k), b (k×n). dst must be
// zeroed (freshly allocated or cleared) and must not alias a or b.
func matMulInto(dst, a, b []float64, m, k, n int) {
	if m == 0 || k == 0 || n == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 1 && m >= 2*mmBlock && m*k*n >= mmParallelFlops {
		if workers > (m+mmBlock-1)/mmBlock {
			workers = (m + mmBlock - 1) / mmBlock
		}
		var wg sync.WaitGroup
		chunk := (m + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, min((w+1)*chunk, m)
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				matMulRange(dst, a, b, lo, hi, k, n)
			}(lo, hi)
		}
		wg.Wait()
		return
	}
	matMulRange(dst, a, b, 0, m, k, n)
}

// matMulRange multiplies A rows [i0,i1) into dst with (i, k) blocking.
func matMulRange(dst, a, b []float64, i0, i1, k, n int) {
	for ib := i0; ib < i1; ib += mmBlock {
		ie := min(ib+mmBlock, i1)
		for kb := 0; kb < k; kb += mmBlock {
			ke := min(kb+mmBlock, k)
			i := ib
			// Two output rows per pass share each B-row load (register
			// blocking): half the B traffic of a row-at-a-time loop.
			for ; i+2 <= ie; i += 2 {
				ar0 := a[i*k : (i+1)*k]
				ar1 := a[(i+1)*k : (i+2)*k]
				or0 := dst[i*n : (i+1)*n]
				or1 := dst[(i+1)*n : (i+2)*n]
				for kk := kb; kk < ke; kk++ {
					av0, av1 := ar0[kk], ar1[kk]
					if av0 == 0 && av1 == 0 {
						continue
					}
					br := b[kk*n : (kk+1)*n : (kk+1)*n]
					for j, bv := range br {
						or0[j] += av0 * bv
						or1[j] += av1 * bv
					}
				}
			}
			for ; i < ie; i++ {
				ar := a[i*k : (i+1)*k]
				or := dst[i*n : (i+1)*n]
				for kk := kb; kk < ke; kk++ {
					av := ar[kk]
					if av == 0 {
						continue
					}
					br := b[kk*n : (kk+1)*n : (kk+1)*n]
					for j, bv := range br {
						or[j] += av * bv
					}
				}
			}
		}
	}
}

// matMulTInto computes dst = a·bᵀ for a (m×k), b (n×k). dst need not be
// zeroed: every cell is written exactly once.
func matMulTInto(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		dr := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			br := b[j*k : (j+1)*k : (j+1)*k]
			var s0, s1, s2, s3 float64
			kk := 0
			for ; kk+4 <= len(br); kk += 4 {
				s0 += ar[kk] * br[kk]
				s1 += ar[kk+1] * br[kk+1]
				s2 += ar[kk+2] * br[kk+2]
				s3 += ar[kk+3] * br[kk+3]
			}
			for ; kk < len(br); kk++ {
				s0 += ar[kk] * br[kk]
			}
			dr[j] = (s0 + s1) + (s2 + s3)
		}
	}
}

// matMulTAccum computes dst += a·bᵀ for a (m×q), b (n×q), dst (m×n) — the
// dX = dOut·Wᵀ shape of linear/matmul backwards.
func matMulTAccum(dst, a, b []float64, m, q, n int) {
	i := 0
	for ; i+2 <= m; i += 2 {
		ar0 := a[i*q : (i+1)*q]
		ar1 := a[(i+1)*q : (i+2)*q]
		dr0 := dst[i*n : (i+1)*n]
		dr1 := dst[(i+1)*n : (i+2)*n]
		for j := 0; j < n; j++ {
			br := b[j*q : (j+1)*q : (j+1)*q]
			var t0, t1, u0, u1 float64
			kk := 0
			for ; kk+2 <= len(br); kk += 2 {
				t0 += ar0[kk] * br[kk]
				t1 += ar0[kk+1] * br[kk+1]
				u0 += ar1[kk] * br[kk]
				u1 += ar1[kk+1] * br[kk+1]
			}
			for ; kk < len(br); kk++ {
				t0 += ar0[kk] * br[kk]
				u0 += ar1[kk] * br[kk]
			}
			dr0[j] += t0 + t1
			dr1[j] += u0 + u1
		}
	}
	for ; i < m; i++ {
		ar := a[i*q : (i+1)*q]
		dr := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			br := b[j*q : (j+1)*q : (j+1)*q]
			var s0, s1 float64
			kk := 0
			for ; kk+2 <= len(br); kk += 2 {
				s0 += ar[kk] * br[kk]
				s1 += ar[kk+1] * br[kk+1]
			}
			for ; kk < len(br); kk++ {
				s0 += ar[kk] * br[kk]
			}
			dr[j] += s0 + s1
		}
	}
}

// matMulATAccum computes dst += aᵀ·g for a (m×k), g (m×n), dst (k×n) — the
// dW = Xᵀ·dOut shape. Zero activations (common after ReLU) are skipped.
func matMulATAccum(dst, a, g []float64, m, k, n int) {
	i := 0
	for ; i+2 <= m; i += 2 {
		ar0 := a[i*k : (i+1)*k]
		ar1 := a[(i+1)*k : (i+2)*k]
		gr0 := g[i*n : (i+1)*n]
		gr1 := g[(i+1)*n : (i+2)*n]
		for kk := 0; kk < k; kk++ {
			av0, av1 := ar0[kk], ar1[kk]
			if av0 == 0 && av1 == 0 {
				continue
			}
			dr := dst[kk*n : (kk+1)*n : (kk+1)*n]
			for j, g0 := range gr0 {
				dr[j] += av0*g0 + av1*gr1[j]
			}
		}
	}
	for ; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		gr := g[i*n : (i+1)*n]
		for kk, av := range ar {
			if av == 0 {
				continue
			}
			dr := dst[kk*n : (kk+1)*n : (kk+1)*n]
			for j, gv := range gr {
				dr[j] += av * gv
			}
		}
	}
}
