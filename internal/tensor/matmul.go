package tensor

import (
	"runtime"
	"sync"
)

// Cache-blocked matrix-multiply kernels shared by the autograd ops and the
// inference arena. The i-k-j loop order streams the B rows sequentially;
// blocking over (i, k) keeps the active B panel resident in cache while a
// block of A rows consumes it. Large products additionally fan out across
// GOMAXPROCS goroutines.

const (
	// mmBlock is the block edge (rows of A × rows of B per panel). 64×64
	// float64 panels are 32 KiB — comfortably L1/L2 resident.
	mmBlock = 64
	// mmParallelFlops is the m*k*n threshold above which matMulInto splits
	// row blocks across goroutines. Below it the spawn overhead dominates.
	mmParallelFlops = 1 << 18
)

// matMulInto computes dst = a·b for row-major a (m×k), b (k×n). dst must be
// zeroed (freshly allocated or cleared) and must not alias a or b.
func matMulInto(dst, a, b []float64, m, k, n int) {
	if m == 0 || k == 0 || n == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 1 && m >= 2*mmBlock && m*k*n >= mmParallelFlops {
		if workers > (m+mmBlock-1)/mmBlock {
			workers = (m + mmBlock - 1) / mmBlock
		}
		var wg sync.WaitGroup
		chunk := (m + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, min((w+1)*chunk, m)
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				matMulRange(dst, a, b, lo, hi, k, n)
			}(lo, hi)
		}
		wg.Wait()
		return
	}
	matMulRange(dst, a, b, 0, m, k, n)
}

// matMulRange multiplies A rows [i0,i1) into dst with (i, k) blocking.
func matMulRange(dst, a, b []float64, i0, i1, k, n int) {
	for ib := i0; ib < i1; ib += mmBlock {
		ie := min(ib+mmBlock, i1)
		for kb := 0; kb < k; kb += mmBlock {
			ke := min(kb+mmBlock, k)
			i := ib
			// Two output rows per pass share each B-row load (register
			// blocking): half the B traffic of a row-at-a-time loop.
			for ; i+2 <= ie; i += 2 {
				ar0 := a[i*k : (i+1)*k]
				ar1 := a[(i+1)*k : (i+2)*k]
				or0 := dst[i*n : (i+1)*n]
				or1 := dst[(i+1)*n : (i+2)*n]
				for kk := kb; kk < ke; kk++ {
					av0, av1 := ar0[kk], ar1[kk]
					if av0 == 0 && av1 == 0 {
						continue
					}
					br := b[kk*n : (kk+1)*n : (kk+1)*n]
					for j, bv := range br {
						or0[j] += av0 * bv
						or1[j] += av1 * bv
					}
				}
			}
			for ; i < ie; i++ {
				ar := a[i*k : (i+1)*k]
				or := dst[i*n : (i+1)*n]
				for kk := kb; kk < ke; kk++ {
					av := ar[kk]
					if av == 0 {
						continue
					}
					br := b[kk*n : (kk+1)*n : (kk+1)*n]
					for j, bv := range br {
						or[j] += av * bv
					}
				}
			}
		}
	}
}

// matMulQ8Into computes the quantized linear dst = dequant(x·wᵀ) + bias
// over packed lane representations (see quant.go for the encoding): xp/xs/xsum
// are the m packed activation rows with per-row scales and unsigned lane sums,
// wp/ws/wsum the n packed weight channels. bias must hold n values (callers
// pass a zeroed row for bias-free products — the epilogue folds it in
// unconditionally to keep branches out of the hot loop). dst need not be
// zeroed — every cell is written exactly once. Large products fan out rows
// across GOMAXPROCS goroutines like the float kernel.
func matMulQ8Into(dst []float64, xp []uint64, xs []float64, xsum []int64, wp []uint64, ws []float64, wsum []int64, bias []float64, m, k, kp, n int) {
	if m == 0 || k == 0 || n == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 1 && m >= 2*mmBlock && m*k*n >= mmParallelFlops {
		if workers > (m+mmBlock-1)/mmBlock {
			workers = (m + mmBlock - 1) / mmBlock
		}
		var wg sync.WaitGroup
		chunk := (m + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, min((w+1)*chunk, m)
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				matMulQ8Range(dst, xp, xs, xsum, wp, ws, wsum, bias, lo, hi, k, kp, n)
			}(lo, hi)
		}
		wg.Wait()
		return
	}
	matMulQ8Range(dst, xp, xs, xsum, wp, ws, wsum, bias, 0, m, k, kp, n)
}

// matMulQ8Range computes activation rows [i0,i1) of the quantized linear.
// Four output channels advance together so each packed activation word is
// loaded once per four dot products, and the inner loop's 64-bit multiply
// computes four multiply-accumulates at a time — the packed-lane trick that
// makes this kernel beat the float64 GEMM on one core.
func matMulQ8Range(dst []float64, xp []uint64, xs []float64, xsum []int64, wp []uint64, ws []float64, wsum []int64, bias []float64, i0, i1, k, kp, n int) {
	kOffSq := int64(k) * (qOff * qOff)
	for i := i0; i < i1; i++ {
		xr := xp[i*kp : (i+1)*kp : (i+1)*kp]
		dr := dst[i*n : (i+1)*n : (i+1)*n]
		sa := xs[i]
		// Per-row half of the offset correction (see quant.go):
		// Σqa·qw = P − qOff·Σau − qOff·Σwu + qOff²·k.
		rowCorr := kOffSq - qOff*xsum[i]
		j := 0
		for ; j+4 <= n; j += 4 {
			w0 := wp[j*kp : (j+1)*kp : (j+1)*kp]
			w1 := wp[(j+1)*kp : (j+2)*kp : (j+2)*kp]
			w2 := wp[(j+2)*kp : (j+3)*kp : (j+3)*kp]
			w3 := wp[(j+3)*kp : (j+4)*kp : (j+4)*kp]
			var p0, p1, p2, p3 uint64
			t := 0
			for ; t+2 <= len(xr); t += 2 {
				a0, a1 := xr[t], xr[t+1]
				p0 += (a0*w0[t])>>48 + (a1*w0[t+1])>>48
				p1 += (a0*w1[t])>>48 + (a1*w1[t+1])>>48
				p2 += (a0*w2[t])>>48 + (a1*w2[t+1])>>48
				p3 += (a0*w3[t])>>48 + (a1*w3[t+1])>>48
			}
			if t < len(xr) {
				a := xr[t]
				p0 += (a * w0[t]) >> 48
				p1 += (a * w1[t]) >> 48
				p2 += (a * w2[t]) >> 48
				p3 += (a * w3[t]) >> 48
			}
			dr[j] = bias[j] + sa*ws[j]*float64(int64(p0)-qOff*wsum[j]+rowCorr)
			dr[j+1] = bias[j+1] + sa*ws[j+1]*float64(int64(p1)-qOff*wsum[j+1]+rowCorr)
			dr[j+2] = bias[j+2] + sa*ws[j+2]*float64(int64(p2)-qOff*wsum[j+2]+rowCorr)
			dr[j+3] = bias[j+3] + sa*ws[j+3]*float64(int64(p3)-qOff*wsum[j+3]+rowCorr)
		}
		for ; j < n; j++ {
			wr := wp[j*kp : (j+1)*kp : (j+1)*kp]
			var p0 uint64
			for t := 0; t < len(xr); t++ {
				p0 += (xr[t] * wr[t]) >> 48
			}
			dr[j] = bias[j] + sa*ws[j]*float64(int64(p0)-qOff*wsum[j]+rowCorr)
		}
	}
}

// matMulTInto computes dst = a·bᵀ for a (m×k), b (n×k). dst need not be
// zeroed: every cell is written exactly once.
func matMulTInto(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		dr := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			br := b[j*k : (j+1)*k : (j+1)*k]
			var s0, s1, s2, s3 float64
			kk := 0
			for ; kk+4 <= len(br); kk += 4 {
				s0 += ar[kk] * br[kk]
				s1 += ar[kk+1] * br[kk+1]
				s2 += ar[kk+2] * br[kk+2]
				s3 += ar[kk+3] * br[kk+3]
			}
			for ; kk < len(br); kk++ {
				s0 += ar[kk] * br[kk]
			}
			dr[j] = (s0 + s1) + (s2 + s3)
		}
	}
}

// matMulTAccum computes dst += a·bᵀ for a (m×q), b (n×q), dst (m×n) — the
// dX = dOut·Wᵀ shape of linear/matmul backwards.
func matMulTAccum(dst, a, b []float64, m, q, n int) {
	i := 0
	for ; i+2 <= m; i += 2 {
		ar0 := a[i*q : (i+1)*q]
		ar1 := a[(i+1)*q : (i+2)*q]
		dr0 := dst[i*n : (i+1)*n]
		dr1 := dst[(i+1)*n : (i+2)*n]
		for j := 0; j < n; j++ {
			br := b[j*q : (j+1)*q : (j+1)*q]
			var t0, t1, u0, u1 float64
			kk := 0
			for ; kk+2 <= len(br); kk += 2 {
				t0 += ar0[kk] * br[kk]
				t1 += ar0[kk+1] * br[kk+1]
				u0 += ar1[kk] * br[kk]
				u1 += ar1[kk+1] * br[kk+1]
			}
			for ; kk < len(br); kk++ {
				t0 += ar0[kk] * br[kk]
				u0 += ar1[kk] * br[kk]
			}
			dr0[j] += t0 + t1
			dr1[j] += u0 + u1
		}
	}
	for ; i < m; i++ {
		ar := a[i*q : (i+1)*q]
		dr := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			br := b[j*q : (j+1)*q : (j+1)*q]
			var s0, s1 float64
			kk := 0
			for ; kk+2 <= len(br); kk += 2 {
				s0 += ar[kk] * br[kk]
				s1 += ar[kk+1] * br[kk+1]
			}
			for ; kk < len(br); kk++ {
				s0 += ar[kk] * br[kk]
			}
			dr[j] += s0 + s1
		}
	}
}

// matMulATAccum computes dst += aᵀ·g for a (m×k), g (m×n), dst (k×n) — the
// dW = Xᵀ·dOut shape. Zero activations (common after ReLU) are skipped.
func matMulATAccum(dst, a, g []float64, m, k, n int) {
	i := 0
	for ; i+2 <= m; i += 2 {
		ar0 := a[i*k : (i+1)*k]
		ar1 := a[(i+1)*k : (i+2)*k]
		gr0 := g[i*n : (i+1)*n]
		gr1 := g[(i+1)*n : (i+2)*n]
		for kk := 0; kk < k; kk++ {
			av0, av1 := ar0[kk], ar1[kk]
			if av0 == 0 && av1 == 0 {
				continue
			}
			dr := dst[kk*n : (kk+1)*n : (kk+1)*n]
			for j, g0 := range gr0 {
				dr[j] += av0*g0 + av1*gr1[j]
			}
		}
	}
	for ; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		gr := g[i*n : (i+1)*n]
		for kk, av := range ar {
			if av == 0 {
				continue
			}
			dr := dst[kk*n : (kk+1)*n : (kk+1)*n]
			for j, gv := range gr {
				dr[j] += av * gv
			}
		}
	}
}
