package tensor

import (
	"fmt"
	"math"
)

// Int8 quantized inference path.
//
// Weights are quantized per output channel with a symmetric scale: every
// channel j stores int8 values q in [-qMax, qMax] and a float64 scale such
// that w ≈ scale·q. Activations are quantized dynamically per row with the
// same symmetric scheme at matmul time. The range is ±63 — a 7-bit dynamic
// range in int8 storage — because that is what lets the kernel pack four
// multiply-accumulates into a single 64-bit integer multiply:
//
// Each value is offset by qOff=64 into a strictly positive lane value
// qu = q+64 ∈ [1,127]. Four activation lanes pack into one uint64 word
// (a0 + a1·2^16 + a2·2^32 + a3·2^48) and the matching weight lanes pack in
// REVERSED order (w3 + w2·2^16 + w1·2^32 + w0·2^48). In the 64-bit product
// the coefficient of 2^48 is exactly a0w0 + a1w1 + a2w2 + a3w3: each lane
// product is ≤ 127² = 16129, so the target coefficient is ≤ 4·16129 = 64516
// < 2^16 and the coefficient below it (three products, ≤ 48387) cannot
// carry into it — (A·W')>>48 & 0xffff is an exact 4-element dot product.
// The offset is then removed algebraically: with unsigned lane sums
// Σau (per activation row) and Σwu (per weight channel),
//
//	Σ q_a·q_w = P − 64·Σau − 64·Σwu + 4096·k
//
// where P is the packed dot over all words. Padding lanes (k not a multiple
// of 4) hold 0 on both sides, contribute 0 to P, and are excluded from the
// sums, so the identity holds with the true k. The whole pipeline is exact
// integer arithmetic — results are deterministic and platform-independent,
// and the only approximation versus the float path is the quantization of
// weights and activations itself.
const (
	// qMax is the symmetric quantized range: values live in [-qMax, qMax].
	qMax = 63
	// qOff shifts quantized values into the strictly positive lane range
	// [1, 127] required by the packed-multiply kernel.
	qOff = 64
	// qLanes is the number of int8 lanes packed per 64-bit word.
	qLanes = 4
)

// QuantizedWeight is a per-output-channel symmetric int8 quantization of a
// Linear weight matrix (In×Out float64 → Out×In int8 + Out scales). The
// packed lane representation consumed by the matmul kernel is precomputed at
// construction; Q and Scale are the canonical (checkpointable) form.
type QuantizedWeight struct {
	In, Out int
	// Q holds the quantized values channel-major: channel j occupies
	// Q[j*In:(j+1)*In], so each output channel's weights are contiguous —
	// the transposed layout the dot-product kernel streams.
	Q []int8
	// Scale is the per-output-channel dequantization factor: w ≈ Scale[j]·q.
	Scale []float64

	kp     int      // packed words per channel: ceil(In/qLanes)
	packed []uint64 // Out×kp lane-reversed packed channels
	colSum []int64  // per-channel sum of unsigned lanes (Σ q+qOff)
}

// QuantizeWeight quantizes a float64 weight matrix w (In×Out, the Linear
// layout) per output channel. Channels that are entirely zero get scale 0.
func QuantizeWeight(w *Tensor) *QuantizedWeight {
	in, out := w.Rows, w.Cols
	q := make([]int8, out*in)
	scale := make([]float64, out)
	for j := 0; j < out; j++ {
		maxabs := 0.0
		for i := 0; i < in; i++ {
			v := math.Abs(w.Data[i*out+j])
			if v > maxabs {
				maxabs = v
			}
		}
		scale[j] = maxabs / qMax
		inv := 0.0
		if maxabs > 0 {
			inv = qMax / maxabs
		}
		for i := 0; i < in; i++ {
			// Round half up, matching the activation quantizer.
			q[j*in+i] = int8(math.Floor(w.Data[i*out+j]*inv + 0.5))
		}
	}
	qw, err := NewQuantizedWeight(in, out, q, scale)
	if err != nil {
		panic("tensor: QuantizeWeight produced out-of-range values: " + err.Error())
	}
	return qw
}

// NewQuantizedWeight builds a QuantizedWeight from its canonical stored form
// (channel-major int8 values + per-channel scales), validating shapes and the
// [-qMax, qMax] value range — out-of-range values would corrupt the packed
// kernel's lane arithmetic, so a checkpoint carrying them is rejected here.
func NewQuantizedWeight(in, out int, q []int8, scale []float64) (*QuantizedWeight, error) {
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("tensor: quantized weight shape %dx%d", out, in)
	}
	if len(q) != in*out {
		return nil, fmt.Errorf("tensor: quantized weight %dx%d with %d values", out, in, len(q))
	}
	if len(scale) != out {
		return nil, fmt.Errorf("tensor: quantized weight %d channels with %d scales", out, len(scale))
	}
	for _, v := range q {
		if v < -qMax || v > qMax {
			return nil, fmt.Errorf("tensor: quantized value %d outside [%d, %d]", v, -qMax, qMax)
		}
	}
	kp := (in + qLanes - 1) / qLanes
	qw := &QuantizedWeight{
		In: in, Out: out, Q: q, Scale: scale,
		kp:     kp,
		packed: make([]uint64, out*kp),
		colSum: make([]int64, out),
	}
	for j := 0; j < out; j++ {
		ch := q[j*in : (j+1)*in]
		sum := int64(0)
		for t := 0; t < kp; t++ {
			var word uint64
			for l := 0; l < qLanes; l++ {
				kk := t*qLanes + l
				if kk >= in {
					break // padding lanes stay zero
				}
				qu := uint64(int64(ch[kk]) + qOff)
				sum += int64(qu)
				word |= qu << (16 * (qLanes - 1 - l)) // lane-reversed
			}
			qw.packed[j*kp+t] = word
		}
		qw.colSum[j] = sum
	}
	return qw, nil
}

// Dequantize reconstructs the float64 weight matrix (In×Out) the quantized
// form approximates.
func (qw *QuantizedWeight) Dequantize() *Tensor {
	w := New(qw.In, qw.Out)
	for j := 0; j < qw.Out; j++ {
		s := qw.Scale[j]
		for i := 0; i < qw.In; i++ {
			w.Data[i*qw.Out+j] = s * float64(qw.Q[j*qw.In+i])
		}
	}
	return w
}

// QuantActs is a row-quantized activation matrix: per row a symmetric scale
// plus packed unsigned lanes, ready for MatMulQ8. Instances are arena-pooled
// scratch — valid until the arena's next Reset, like arena tensors.
type QuantActs struct {
	Rows, Cols int
	kp         int
	packed     []uint64
	scale      []float64
	sum        []int64 // per-row sum of unsigned lanes
}

// quantActs returns a pooled QuantActs with capacity for rows×cols.
func (ar *Arena) quantActs(rows, cols int) *QuantActs {
	if ar.qnext == len(ar.qacts) {
		ar.qacts = append(ar.qacts, new(QuantActs))
	}
	qa := ar.qacts[ar.qnext]
	ar.qnext++
	kp := (cols + qLanes - 1) / qLanes
	if cap(qa.packed) < rows*kp {
		qa.packed = make([]uint64, rows*kp)
	}
	if cap(qa.scale) < rows {
		qa.scale = make([]float64, rows)
		qa.sum = make([]int64, rows)
	}
	qa.Rows, qa.Cols, qa.kp = rows, cols, kp
	qa.packed = qa.packed[:rows*kp]
	qa.scale = qa.scale[:rows]
	qa.sum = qa.sum[:rows]
	return qa
}

// QuantizeActs quantizes x row-wise (symmetric, dynamic per-row scale) into
// pooled scratch. Callers projecting the same activations through several
// quantized layers (multi-head attention's Q/K/V) quantize once and reuse.
func (ar *Arena) QuantizeActs(x *Tensor) *QuantActs {
	qa := ar.quantActs(x.Rows, x.Cols)
	quantPackRows(qa.packed, qa.scale, qa.sum, x.Data, x.Rows, x.Cols, qa.kp)
	return qa
}

// quantPackRows quantizes m rows of k float64s each into packed unsigned
// lanes: per row, scale = maxabs/qMax, q = round(v/scale), lane = q+qOff.
func quantPackRows(xp []uint64, xs []float64, xsum []int64, x []float64, m, k, kp int) {
	for i := 0; i < m; i++ {
		row := x[i*k : (i+1)*k : (i+1)*k]
		maxabs := 0.0
		// math.Abs compiles to a branchless sign-bit clear; an if v < 0
		// branch here mispredicts on every mixed-sign activation row and
		// doubles the cost of the scan.
		for _, v := range row {
			if a := math.Abs(v); a > maxabs {
				maxabs = a
			}
		}
		var inv float64
		if maxabs > 0 {
			inv = qMax / maxabs
			xs[i] = maxabs / qMax
		} else {
			xs[i] = 0
		}
		sum := int64(0)
		wp := xp[i*kp : (i+1)*kp : (i+1)*kp]
		t := 0
		for ; t+1 < kp; t++ {
			// Full word of 4 lanes. v·inv ∈ [-63, 63], so v·inv + 64.5 is
			// strictly positive and uint64 truncation computes
			// floor(v·inv + 0.5) + 64 — round half up plus the lane offset,
			// branch-free.
			base := t * qLanes
			q0 := uint64(row[base]*inv + (qOff + 0.5))
			q1 := uint64(row[base+1]*inv + (qOff + 0.5))
			q2 := uint64(row[base+2]*inv + (qOff + 0.5))
			q3 := uint64(row[base+3]*inv + (qOff + 0.5))
			sum += int64(q0 + q1 + q2 + q3)
			wp[t] = q0 | q1<<16 | q2<<32 | q3<<48
		}
		// Last word, possibly partial: padding lanes stay zero.
		var word uint64
		for l := 0; l < qLanes; l++ {
			kk := t*qLanes + l
			if kk >= k {
				break
			}
			q := uint64(row[kk]*inv + (qOff + 0.5))
			sum += int64(q)
			word |= q << (16 * l)
		}
		wp[t] = word
		xsum[i] = sum
	}
}

// MatMulQ8 multiplies pre-quantized activations by a quantized weight,
// optionally fusing a bias-row add (bias may be nil): out = dequant(qx·qwᵀ)
// [+ bias]. Every output cell is written exactly once.
func (ar *Arena) MatMulQ8(qx *QuantActs, qw *QuantizedWeight, bias *Tensor) *Tensor {
	if qx.Cols != qw.In {
		panic(fmt.Sprintf("tensor: MatMulQ8 %dx%d · quantized %dx%d", qx.Rows, qx.Cols, qw.In, qw.Out))
	}
	var biasData []float64
	if bias != nil {
		if bias.Rows != 1 || bias.Cols != qw.Out {
			panic(fmt.Sprintf("tensor: MatMulQ8 bias %dx%d for %d outputs", bias.Rows, bias.Cols, qw.Out))
		}
		biasData = bias.Data
	} else {
		// The kernel folds the bias into its dequantization epilogue
		// unconditionally (a branch per output channel would sit in the hot
		// loop); a zeroed arena row stands in when there is none.
		biasData = ar.Tensor(1, qw.Out).Data
	}
	out := ar.Uninit(qx.Rows, qw.Out)
	matMulQ8Into(out.Data, qx.packed, qx.scale, qx.sum, qw.packed, qw.Scale, qw.colSum, biasData, qx.Rows, qx.Cols, qx.kp, qw.Out)
	return out
}

// LinearQ8 is the fused quantized linear layer: quantize x row-wise, multiply
// by the quantized weight, dequantize with the bias add folded in. It
// replaces the float path's zeroed-tensor + matmul + bias-broadcast sequence
// with one pass and zero heap allocations at steady state.
func (ar *Arena) LinearQ8(x *Tensor, qw *QuantizedWeight, bias *Tensor) *Tensor {
	if x.Cols != qw.In {
		panic(fmt.Sprintf("tensor: LinearQ8 %dx%d · quantized %dx%d", x.Rows, x.Cols, qw.In, qw.Out))
	}
	return ar.MatMulQ8(ar.QuantizeActs(x), qw, bias)
}
