// Package tensor is a minimal dense float64 tensor library with tape-based
// reverse-mode automatic differentiation — the substrate that replaces
// PyTorch in this reproduction (see DESIGN.md). It supports exactly the
// operations the VMR2L policy networks and PPO need: 2-D matrix algebra,
// row-wise softmax/log-softmax with additive masks, layer norm, elementwise
// nonlinearities, gathers, and reductions.
//
// Gradients flow through a dynamically built graph: every op records its
// parents and a backward closure; Backward() runs a topological sort and
// accumulates gradients into .Grad. Tensors are 2-D (rows × cols); vectors
// are 1×n or n×1 as convenient.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a 2-D matrix with optional gradient tracking.
type Tensor struct {
	Data []float64
	Grad []float64
	Rows int
	Cols int

	requiresGrad bool
	parents      []*Tensor
	backward     func()
}

// New allocates a zero rows×cols tensor. While a graph pool is installed
// (training steps), storage is recycled like any other graph node — callers
// that need a tensor to outlive the step (parameters, checkpoints) allocate
// while no pool is active.
func New(rows, cols int) *Tensor {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Tensor{Data: graphAlloc(rows * cols), Rows: rows, Cols: cols}
}

// FromSlice wraps row-major data (copied) into a rows×cols tensor.
func FromSlice(rows, cols int, data []float64) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d with %d values", rows, cols, len(data)))
	}
	t := New(rows, cols)
	copy(t.Data, data)
	return t
}

// FromRows builds a tensor from equal-length rows.
func FromRows(rows [][]float64) *Tensor {
	if len(rows) == 0 {
		return New(0, 0)
	}
	t := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != t.Cols {
			panic("tensor: ragged rows")
		}
		copy(t.Data[i*t.Cols:], r)
	}
	return t
}

// Randn fills a new tensor with Gaussian values scaled by std.
func Randn(rng *rand.Rand, rows, cols int, std float64) *Tensor {
	t := New(rows, cols)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
	return t
}

// Param marks the tensor as a trainable parameter (gradients accumulate).
func (t *Tensor) Param() *Tensor {
	t.requiresGrad = true
	if t.Grad == nil {
		t.Grad = make([]float64, len(t.Data))
	}
	return t
}

// RequiresGrad reports whether the tensor participates in autodiff.
func (t *Tensor) RequiresGrad() bool { return t.requiresGrad }

// At returns element (i, j).
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.Cols+j] }

// Set assigns element (i, j).
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.Cols+j] = v }

// Scalar returns the single element of a 1×1 tensor.
func (t *Tensor) Scalar() float64 {
	if t.Rows*t.Cols != 1 {
		panic(fmt.Sprintf("tensor: Scalar on %dx%d", t.Rows, t.Cols))
	}
	return t.Data[0]
}

// Clone returns a detached copy (no graph history, not a parameter).
func (t *Tensor) Clone() *Tensor {
	c := New(t.Rows, t.Cols)
	copy(c.Data, t.Data)
	return c
}

// child builds a result tensor wired into the graph when any parent
// requires grad. Storage comes from the active graph pool when one is
// installed (see GraphPool).
func child(rows, cols int, parents ...*Tensor) *Tensor {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	out := &Tensor{Data: graphAlloc(rows * cols), Rows: rows, Cols: cols}
	for _, p := range parents {
		if p.requiresGrad {
			out.requiresGrad = true
			break
		}
	}
	if out.requiresGrad {
		out.Grad = graphAlloc(len(out.Data))
		out.parents = parents
	}
	return out
}

// ensureGrad lazily allocates the gradient buffer of a graph-internal node.
func (t *Tensor) ensureGrad() {
	if t.Grad == nil {
		t.Grad = graphAlloc(len(t.Data))
	}
}

// Backward seeds the output gradient with 1 (the tensor must be 1×1) and
// back-propagates through the recorded graph.
func (t *Tensor) Backward() {
	if t.Rows*t.Cols != 1 {
		panic("tensor: Backward on non-scalar; reduce first")
	}
	if !t.requiresGrad {
		return
	}
	t.ensureGrad()
	t.Grad[0] = 1
	// Topological order via DFS.
	var order []*Tensor
	seen := map[*Tensor]bool{}
	var visit func(*Tensor)
	visit = func(n *Tensor) {
		if seen[n] || !n.requiresGrad {
			return
		}
		seen[n] = true
		for _, p := range n.parents {
			visit(p)
		}
		order = append(order, n)
	}
	visit(t)
	for i := len(order) - 1; i >= 0; i-- {
		if order[i].backward != nil {
			order[i].backward()
		}
	}
}

// ZeroGrad clears the gradient buffer.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// Detach returns a view of the data with no graph history (shares storage).
func (t *Tensor) Detach() *Tensor {
	return &Tensor{Data: t.Data, Rows: t.Rows, Cols: t.Cols}
}

// checkFinite panics on NaN/Inf — used by tests and training assertions.
func (t *Tensor) CheckFinite(label string) {
	for _, v := range t.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			panic(fmt.Sprintf("tensor: non-finite value in %s", label))
		}
	}
}
