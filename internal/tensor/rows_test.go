package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// randTensorRows builds a rows×cols tensor of mixed-sign values with a
// sprinkle of exact zeros (the zero-skip parity edge).
func randTensorRows(rng *rand.Rand, rows, cols int) *Tensor {
	t := New(rows, cols)
	for i := range t.Data {
		switch rng.Intn(5) {
		case 0:
			t.Data[i] = 0
		default:
			t.Data[i] = rng.NormFloat64()
		}
	}
	return t
}

// pickRows returns a random subset of row ids (possibly empty, unsorted).
func pickRows(rng *rand.Rand, n int) []int {
	var rows []int
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			rows = append(rows, i)
		}
	}
	rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
	return rows
}

// corruptRows scribbles NaNs over the selected rows of t so the test proves
// the patch really recomputes them (and only them).
func corruptRows(t *Tensor, rows []int) {
	for _, i := range rows {
		for j := 0; j < t.Cols; j++ {
			t.Data[i*t.Cols+j] = math.NaN()
		}
	}
}

func assertTensorBits(t *testing.T, name string, got, want *Tensor) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d != %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, w := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(w) {
			t.Fatalf("%s: element %d = %v (bits %x), want %v (bits %x)",
				name, i, got.Data[i], math.Float64bits(got.Data[i]), w, math.Float64bits(w))
		}
	}
}

// TestLinearRowsBitParity pins the float row kernel against the full
// MatMul+AddRowInPlace path across random shapes, including shapes that
// trigger the parallel and paired-row branches of matMulInto.
func TestLinearRowsBitParity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ar := &Arena{}
	for trial := 0; trial < 40; trial++ {
		m := 1 + rng.Intn(200)
		k := 1 + rng.Intn(48)
		n := 1 + rng.Intn(48)
		if trial%7 == 0 {
			m = 2*mmBlock + rng.Intn(128) // force the parallel fan-out path
		}
		x := randTensorRows(rng, m, k)
		w := randTensorRows(rng, k, n)
		b := randTensorRows(rng, 1, n)

		ar.Reset()
		want := ar.AddRowInPlace(ar.MatMul(x, w), b)

		cached := New(m, n)
		copy(cached.Data, want.Data)
		rows := pickRows(rng, m)
		corruptRows(cached, rows)
		ar.LinearRows(cached, x, w, b, rows)
		assertTensorBits(t, "LinearRows", cached, want)

		// nil bias = pure matmul patch.
		ar.Reset()
		wantNB := ar.MatMul(x, w)
		cachedNB := New(m, n)
		copy(cachedNB.Data, wantNB.Data)
		corruptRows(cachedNB, rows)
		ar.LinearRows(cachedNB, x, w, nil, rows)
		assertTensorBits(t, "LinearRows(nil bias)", cachedNB, wantNB)
	}
}

// TestLinearQ8RowsBitParity pins the int8 row kernel against the full
// LinearQ8 path: per-row activation quantization must round-trip identically.
func TestLinearQ8RowsBitParity(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ar := &Arena{}
	for trial := 0; trial < 40; trial++ {
		m := 1 + rng.Intn(120)
		k := 1 + rng.Intn(64)
		n := 1 + rng.Intn(48)
		x := randTensorRows(rng, m, k)
		w := randTensorRows(rng, k, n)
		b := randTensorRows(rng, 1, n)
		qw := QuantizeWeight(w)

		ar.Reset()
		want := ar.LinearQ8(x, qw, b)

		cached := New(m, n)
		copy(cached.Data, want.Data)
		rows := pickRows(rng, m)
		corruptRows(cached, rows)
		ar.LinearQ8Rows(cached, x, qw, b, rows)
		assertTensorBits(t, "LinearQ8Rows", cached, want)

		ar.Reset()
		wantNB := ar.MatMulQ8(ar.QuantizeActs(x), qw, nil)
		cachedNB := New(m, n)
		copy(cachedNB.Data, wantNB.Data)
		corruptRows(cachedNB, rows)
		ar.LinearQ8Rows(cachedNB, x, qw, nil, rows)
		assertTensorBits(t, "LinearQ8Rows(nil bias)", cachedNB, wantNB)
	}
}

// TestLayerNormAddReLURowsBitParity covers the remaining row-wise patches:
// LayerNormRows, AddRows and ReLURowsInPlace against their full kernels.
func TestLayerNormAddReLURowsBitParity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ar := &Arena{}
	for trial := 0; trial < 40; trial++ {
		m := 1 + rng.Intn(80)
		n := 1 + rng.Intn(48)
		a := randTensorRows(rng, m, n)
		bten := randTensorRows(rng, m, n)
		gamma := randTensorRows(rng, 1, n)
		beta := randTensorRows(rng, 1, n)
		rows := pickRows(rng, m)

		ar.Reset()
		wantLN := ar.LayerNorm(a, gamma, beta, 1e-5)
		cached := New(m, n)
		copy(cached.Data, wantLN.Data)
		corruptRows(cached, rows)
		ar.LayerNormRows(cached, a, gamma, beta, 1e-5, rows)
		assertTensorBits(t, "LayerNormRows", cached, wantLN)

		ar.Reset()
		wantAdd := ar.Add(a, bten)
		cachedAdd := New(m, n)
		copy(cachedAdd.Data, wantAdd.Data)
		corruptRows(cachedAdd, rows)
		ar.AddRows(cachedAdd, a, bten, rows)
		assertTensorBits(t, "AddRows", cachedAdd, wantAdd)

		wantReLU := New(m, n)
		copy(wantReLU.Data, a.Data)
		ar.ReLUInPlace(wantReLU)
		gotReLU := New(m, n)
		copy(gotReLU.Data, a.Data)
		// Patch semantics: rectify only the selected rows of a copy whose
		// other rows were already rectified.
		copy(gotReLU.Data, wantReLU.Data)
		for _, i := range rows {
			copy(gotReLU.Data[i*n:(i+1)*n], a.Data[i*n:(i+1)*n])
		}
		ar.ReLURowsInPlace(gotReLU, rows)
		assertTensorBits(t, "ReLURowsInPlace", gotReLU, wantReLU)
	}
}

// TestGroupedAttentionRowsBitParity pins the group patch against the full
// grouped kernel: recomputing a subset of groups over identical q/k/v must
// reproduce exactly the full result's rows, both for the serial and the
// parallel full path.
func TestGroupedAttentionRowsBitParity(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	ar := &Arena{}
	for trial := 0; trial < 30; trial++ {
		m := 4 + rng.Intn(200)
		d := 1 + rng.Intn(16)
		dv := 1 + rng.Intn(16)
		q := randTensorRows(rng, m, d)
		k := randTensorRows(rng, m, d)
		v := randTensorRows(rng, m, dv)
		// Random disjoint groups covering a subset of rows.
		perm := rng.Perm(m)
		var groups [][]int
		for at := 0; at < m; {
			s := 1 + rng.Intn(7)
			if at+s > m {
				s = m - at
			}
			groups = append(groups, perm[at:at+s])
			at += s
		}
		scale := 1 / math.Sqrt(float64(d))

		ar.Reset()
		want := ar.GroupedAttention(q, k, v, groups, scale)

		var dirty [][]int
		for _, g := range groups {
			if rng.Intn(2) == 0 {
				dirty = append(dirty, g)
			}
		}
		cached := New(m, dv)
		copy(cached.Data, want.Data)
		for _, g := range dirty {
			corruptRows(cached, g)
		}
		ar.GroupedAttentionRows(cached, q, k, v, dirty, scale)
		assertTensorBits(t, "GroupedAttentionRows", cached, want)
	}
}
