package tensor

import (
	"math/rand"
	"runtime"
	"testing"
)

// randArena builds a deterministic random tensor directly (no graph).
func randDense(rng *rand.Rand, rows, cols int) *Tensor {
	t := New(rows, cols)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

// TestSegmentedAttentionMatchesPerSegmentOps pins SegmentedAttention against
// the op-by-op composition it replaces, per segment.
func TestSegmentedAttentionMatchesPerSegmentOps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	qOff := []int{0, 5, 5, 12, 20}
	kvOff := []int{0, 7, 9, 9, 16}
	d, dv := 8, 6
	q := randDense(rng, qOff[len(qOff)-1], d)
	k := randDense(rng, kvOff[len(kvOff)-1], d)
	v := randDense(rng, kvOff[len(kvOff)-1], dv)
	var ar Arena
	out, probs := ar.SegmentedAttention(q, k, v, qOff, kvOff, 0.35)
	var ref Arena
	for b := 0; b < len(qOff)-1; b++ {
		qb := ref.Rows(q, qOff[b], qOff[b+1])
		kb := ref.Rows(k, kvOff[b], kvOff[b+1])
		vb := ref.Rows(v, kvOff[b], kvOff[b+1])
		p := ref.Softmax(ref.Scale(ref.MatMulT(qb, kb), 0.35))
		o := ref.MatMul(p, vb)
		for i := range p.Data {
			if p.Data[i] != probs[b].Data[i] {
				t.Fatalf("segment %d probs[%d]: %v != %v", b, i, probs[b].Data[i], p.Data[i])
			}
		}
		for i := range o.Data {
			if got := out.Data[qOff[b]*dv+i]; got != o.Data[i] {
				t.Fatalf("segment %d out[%d]: %v != %v", b, i, got, o.Data[i])
			}
		}
	}
}

// TestSegmentedAttentionParallelBitIdentical forces the goroutine fan-out
// (GOMAXPROCS > 1, work above the parallel threshold) and asserts the result
// matches the serial pass bit for bit — the contract that lets batched
// forwards parallelize without breaking InferBatch/Infer equivalence.
func TestSegmentedAttentionParallelBitIdentical(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(7))
	const segs, m, n, d = 8, 48, 48, 32
	qOff := make([]int, segs+1)
	kvOff := make([]int, segs+1)
	for b := 1; b <= segs; b++ {
		qOff[b] = qOff[b-1] + m
		kvOff[b] = kvOff[b-1] + n
	}
	q := randDense(rng, qOff[segs], d)
	k := randDense(rng, kvOff[segs], d)
	v := randDense(rng, kvOff[segs], d)
	// Work = segs·m·n·2d ≈ 1.2M flops: above mmParallelFlops, so with
	// GOMAXPROCS=4 this runs the parallel branch.
	var ar Arena
	out, probs := ar.SegmentedAttention(q, k, v, qOff, kvOff, 0.25)

	runtime.GOMAXPROCS(1) // serial reference
	var ser Arena
	wantOut, wantProbs := ser.SegmentedAttention(q, k, v, qOff, kvOff, 0.25)
	runtime.GOMAXPROCS(4)
	for i := range wantOut.Data {
		if out.Data[i] != wantOut.Data[i] {
			t.Fatalf("out[%d]: parallel %v != serial %v", i, out.Data[i], wantOut.Data[i])
		}
	}
	for b := range wantProbs {
		for i := range wantProbs[b].Data {
			if probs[b].Data[i] != wantProbs[b].Data[i] {
				t.Fatalf("probs[%d][%d]: parallel %v != serial %v", b, i, probs[b].Data[i], wantProbs[b].Data[i])
			}
		}
	}
}

// TestGroupedAttentionParallelBitIdentical does the same for the tree
// attention fan-out across group chunks.
func TestGroupedAttentionParallelBitIdentical(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(9))
	const rows, d = 256, 32
	q := randDense(rng, rows, d)
	k := randDense(rng, rows, d)
	v := randDense(rng, rows, d)
	var groups [][]int
	for lo := 0; lo < rows; lo += 16 {
		g := make([]int, 16)
		for i := range g {
			g[i] = lo + i
		}
		groups = append(groups, g)
	}
	// Work = 16 groups · 16²·2d ≈ 262k flops: at the parallel threshold.
	var ar Arena
	got := ar.GroupedAttention(q, k, v, groups, 0.2)
	runtime.GOMAXPROCS(1)
	var ser Arena
	want := ser.GroupedAttention(q, k, v, groups, 0.2)
	runtime.GOMAXPROCS(4)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("out[%d]: parallel %v != serial %v", i, got.Data[i], want.Data[i])
		}
	}
}
