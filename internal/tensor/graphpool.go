package tensor

// GraphPool recycles the float64 buffers behind autograd graph nodes. PPO
// updates build and discard thousands of near-identical small graphs per
// second; routing their Data/Grad storage through a bump pool removes the
// allocator and GC pressure (the buffers are still zeroed on reuse, which
// the ops require). The pool is NOT thread-safe and applies process-wide:
// enable it only around single-threaded training steps, and never hold a
// graph across Reset.
//
// Persistent tensors (parameters, checkpoints) are allocated via New while
// no pool is installed, so they are never recycled.
type GraphPool struct {
	bufs [][]float64
	next int
}

// activeGraphPool is consulted by child() and ensureGrad(). nil = off.
var activeGraphPool *GraphPool

// SetGraphPool installs (or, with nil, removes) the process-wide graph pool.
// Returns the previously installed pool.
func SetGraphPool(p *GraphPool) *GraphPool {
	prev := activeGraphPool
	activeGraphPool = p
	return prev
}

// Reset recycles every buffer handed out since the last Reset. All tensors
// whose storage came from the pool are invalid afterwards.
func (p *GraphPool) Reset() { p.next = 0 }

// get returns a zeroed buffer of length n.
func (p *GraphPool) get(n int) []float64 {
	if p.next == len(p.bufs) {
		p.bufs = append(p.bufs, make([]float64, n))
	}
	buf := p.bufs[p.next]
	if cap(buf) < n {
		buf = make([]float64, n)
		p.bufs[p.next] = buf
	} else {
		buf = buf[:n]
		for i := range buf {
			buf[i] = 0
		}
		p.bufs[p.next] = buf
	}
	p.next++
	return buf
}

// graphAlloc returns a zeroed buffer for a graph-internal tensor, from the
// active pool when one is installed.
func graphAlloc(n int) []float64 {
	if activeGraphPool != nil {
		return activeGraphPool.get(n)
	}
	return make([]float64, n)
}
