package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// numericGrad estimates dLoss/dX[i] by central differences, where loss
// rebuilds the graph from scratch via f.
func numericGrad(x *Tensor, i int, f func() *Tensor) float64 {
	const h = 1e-6
	orig := x.Data[i]
	x.Data[i] = orig + h
	up := f().Scalar()
	x.Data[i] = orig - h
	down := f().Scalar()
	x.Data[i] = orig
	return (up - down) / (2 * h)
}

// checkGrads verifies analytic vs numeric gradients of loss(f) w.r.t. every
// listed parameter.
func checkGrads(t *testing.T, f func() *Tensor, params ...*Tensor) {
	t.Helper()
	loss := f()
	loss.Backward()
	for pi, p := range params {
		for i := range p.Data {
			want := numericGrad(p, i, f)
			got := p.Grad[i]
			scale := math.Max(1, math.Abs(want))
			if math.Abs(got-want)/scale > 1e-4 {
				t.Fatalf("param %d elem %d: grad %v, numeric %v", pi, i, got, want)
			}
		}
	}
}

func randParam(rng *rand.Rand, r, c int) *Tensor {
	return Randn(rng, r, c, 0.5).Param()
}

func TestGradAddSubMulScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randParam(rng, 3, 4)
	b := randParam(rng, 3, 4)
	checkGrads(t, func() *Tensor {
		return Mean(Mul(Add(a, b), Sub(Scale(a, 2), AddScalar(b, 0.3))))
	}, a, b)
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randParam(rng, 3, 5)
	b := randParam(rng, 5, 2)
	checkGrads(t, func() *Tensor { return Mean(MatMul(a, b)) }, a, b)
}

func TestGradMatMulT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randParam(rng, 3, 4)
	b := randParam(rng, 6, 4)
	checkGrads(t, func() *Tensor { return Mean(Tanh(MatMulT(a, b))) }, a, b)
}

func TestGradAddRow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randParam(rng, 4, 3)
	row := randParam(rng, 1, 3)
	checkGrads(t, func() *Tensor { return Mean(ReLU(AddRow(a, row))) }, a, row)
}

func TestGradSoftmaxLogSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randParam(rng, 3, 5)
	w := Randn(rng, 3, 5, 1) // fixed weights make the loss non-symmetric
	checkGrads(t, func() *Tensor { return Mean(Mul(Softmax(a), w)) }, a)
	a.ZeroGrad()
	checkGrads(t, func() *Tensor { return Mean(Mul(LogSoftmax(a), w)) }, a)
}

func TestGradMaskedSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randParam(rng, 2, 6)
	mask := []bool{true, false, true, true, false, true, false, true, true, false, true, true}
	w := Randn(rng, 2, 6, 1)
	checkGrads(t, func() *Tensor {
		return Mean(Mul(Softmax(MaskedFill(a, mask, -1e9)), w))
	}, a)
	// Masked positions get ~zero probability.
	p := Softmax(MaskedFill(a, mask, -1e9))
	for i, ok := range mask {
		if !ok && p.Data[i] > 1e-8 {
			t.Fatalf("masked position %d has probability %v", i, p.Data[i])
		}
	}
}

func TestGradLayerNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randParam(rng, 3, 6)
	gamma := randParam(rng, 1, 6)
	beta := randParam(rng, 1, 6)
	w := Randn(rng, 3, 6, 1)
	checkGrads(t, func() *Tensor {
		return Mean(Mul(LayerNorm(a, gamma, beta, 1e-5), w))
	}, a, gamma, beta)
}

func TestGradReductionsAndGathers(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randParam(rng, 5, 3)
	checkGrads(t, func() *Tensor { return Sum(GatherRows(a, []int{0, 2, 2, 4})) }, a)
	a.ZeroGrad()
	checkGrads(t, func() *Tensor { return Mean(PickPerRow(a, []int{1, 0, 2, 1, 0})) }, a)
	a.ZeroGrad()
	checkGrads(t, func() *Tensor { return Sum(MeanRows(a)) }, a)
}

func TestGradConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randParam(rng, 2, 3)
	b := randParam(rng, 2, 4)
	c := randParam(rng, 3, 3)
	w := Randn(rng, 2, 7, 1)
	checkGrads(t, func() *Tensor { return Mean(Mul(ConcatCols(a, b), w)) }, a, b)
	a.ZeroGrad()
	w2 := Randn(rng, 5, 3, 1)
	checkGrads(t, func() *Tensor { return Mean(Mul(ConcatRows(a, c), w2)) }, a, c)
}

func TestGradExpClampMin(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randParam(rng, 3, 3)
	b := randParam(rng, 3, 3)
	checkGrads(t, func() *Tensor { return Mean(Exp(Scale(a, 0.3))) }, a)
	a.ZeroGrad()
	checkGrads(t, func() *Tensor { return Mean(Min(a, b)) }, a, b)
	a.ZeroGrad()
	// Clamp boundaries have zero grad; test only interior points by
	// clamping far outside the data range.
	checkGrads(t, func() *Tensor { return Mean(Clamp(a, -100, 100)) }, a)
}

func TestClampValues(t *testing.T) {
	a := FromSlice(1, 3, []float64{-5, 0.5, 5})
	c := Clamp(a, 0, 1)
	want := []float64{0, 0.5, 1}
	for i, v := range c.Data {
		if v != want[i] {
			t.Fatalf("Clamp = %v, want %v", c.Data, want)
		}
	}
}

func TestBackwardTwiceAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randParam(rng, 2, 2)
	loss := Mean(Mul(a, a))
	loss.Backward()
	g1 := append([]float64(nil), a.Grad...)
	loss2 := Mean(Mul(a, a))
	loss2.Backward()
	for i := range g1 {
		if math.Abs(a.Grad[i]-2*g1[i]) > 1e-12 {
			t.Fatal("gradients should accumulate across backward passes")
		}
	}
	a.ZeroGrad()
	for _, g := range a.Grad {
		if g != 0 {
			t.Fatal("ZeroGrad failed")
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Randn(rng, 4, 7, 3)
		s := Softmax(a)
		for i := 0; i < s.Rows; i++ {
			sum := 0.0
			for j := 0; j < s.Cols; j++ {
				sum += s.At(i, j)
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxFullyMaskedRowIsUniform(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	mask := []bool{false, false, false}
	s := Softmax(MaskedFill(a, mask, -1e9))
	for _, v := range s.Data {
		if math.Abs(v-1.0/3) > 1e-9 {
			t.Fatalf("fully masked softmax = %v", s.Data)
		}
	}
}

func TestShapePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	a := New(2, 3)
	b := New(3, 2)
	expectPanic("Add", func() { Add(a, b) })
	expectPanic("MatMul", func() { MatMul(a, New(2, 2)) })
	expectPanic("MatMulT", func() { MatMulT(a, New(2, 2)) })
	expectPanic("FromSlice", func() { FromSlice(2, 2, []float64{1}) })
	expectPanic("Scalar", func() { a.Scalar() })
	expectPanic("Backward", func() { a.Param(); Mul(a, a).Backward() })
	expectPanic("GatherRows", func() { GatherRows(a, []int{5}) })
	expectPanic("PickPerRow", func() { PickPerRow(a, []int{0}) })
	expectPanic("MaskedFill", func() { MaskedFill(a, []bool{true}, 0) })
}

func TestHelpers(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if a.At(1, 0) != 3 {
		t.Fatal("FromRows/At")
	}
	a.Set(1, 0, 7)
	if a.At(1, 0) != 7 {
		t.Fatal("Set")
	}
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Fatal("Clone shares storage")
	}
	d := a.Detach()
	if d.RequiresGrad() {
		t.Fatal("Detach requires grad")
	}
	a.CheckFinite("a")
}

func TestGradTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randParam(rng, 2, 4)
	w := Randn(rng, 4, 2, 1)
	checkGrads(t, func() *Tensor { return Mean(Mul(Transpose(a), w)) }, a)
	b := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	bt := Transpose(b)
	if bt.Rows != 3 || bt.Cols != 2 || bt.At(0, 1) != 4 || bt.At(2, 0) != 3 {
		t.Fatalf("Transpose wrong: %+v", bt.Data)
	}
}

func TestGradReshape(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randParam(rng, 2, 6)
	w := Randn(rng, 3, 4, 1)
	checkGrads(t, func() *Tensor { return Mean(Mul(Reshape(a, 3, 4), w)) }, a)
}
