package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Arena is the inference-mode scratch allocator: a bump allocator over a
// pool of reusable tensors. Ops invoked through an Arena never build
// autograd graphs — no parent links, no backward closures, no gradient
// buffers — and their outputs live until the next Reset, at which point the
// storage is recycled. After the first few forwards an arena reaches a
// steady state where a full policy forward performs zero heap allocations.
//
// An Arena is not safe for concurrent use; give each worker goroutine its
// own (see policy's arena pool). Tensors returned by arena ops must not be
// retained across Reset and must not be fed into autograd ops that will be
// backpropagated through.
type Arena struct {
	tensors []*Tensor
	next    int
	// views are zero-copy headers (Rows, Reshape) kept separate from the
	// storage pool: their Data fields alias other tensors and must never be
	// recycled as backing buffers.
	views []*Tensor
	vnext int
	// tslices are recycled []*Tensor headers (SegmentedAttention's
	// per-segment probability lists).
	tslices [][]*Tensor
	tsnext  int
	// qacts are recycled quantized-activation buffers (QuantizeActs).
	qacts []*QuantActs
	qnext int
}

// Reset recycles all tensors, views, tensor slices, and quantized-activation
// buffers handed out since the last Reset.
func (ar *Arena) Reset() { ar.next, ar.vnext, ar.tsnext, ar.qnext = 0, 0, 0, 0 }

// tensorSlice returns a recycled []*Tensor of length n.
func (ar *Arena) tensorSlice(n int) []*Tensor {
	if ar.tsnext == len(ar.tslices) {
		ar.tslices = append(ar.tslices, make([]*Tensor, n))
	}
	s := ar.tslices[ar.tsnext]
	if cap(s) < n {
		s = make([]*Tensor, n)
		ar.tslices[ar.tsnext] = s
	}
	ar.tsnext++
	return s[:n]
}

// view returns a reusable tensor header whose Data the caller will point at
// existing storage.
func (ar *Arena) view(data []float64, rows, cols int) *Tensor {
	if ar.vnext == len(ar.views) {
		ar.views = append(ar.views, new(Tensor))
	}
	t := ar.views[ar.vnext]
	ar.vnext++
	t.Data, t.Rows, t.Cols = data, rows, cols
	t.Grad, t.parents, t.backward, t.requiresGrad = nil, nil, nil, false
	return t
}

// Tensor returns a zeroed rows×cols tensor backed by recycled storage.
func (ar *Arena) Tensor(rows, cols int) *Tensor {
	t := ar.Uninit(rows, cols)
	for i := range t.Data {
		t.Data[i] = 0
	}
	return t
}

// Uninit returns a rows×cols tensor backed by recycled storage WITHOUT
// clearing it: recycled entries hold stale values from earlier ops. Use only
// when every element will be written before it is read — the case for most
// elementwise and copy ops, where the zeroing of Tensor is pure memclr
// overhead on the inference hot path. Accumulating consumers (MatMul,
// GroupedAttention) must use Tensor.
func (ar *Arena) Uninit(rows, cols int) *Tensor {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: arena invalid shape %dx%d", rows, cols))
	}
	n := rows * cols
	if ar.next == len(ar.tensors) {
		ar.tensors = append(ar.tensors, &Tensor{Data: make([]float64, n)})
	}
	t := ar.tensors[ar.next]
	ar.next++
	if cap(t.Data) < n {
		t.Data = make([]float64, n)
	} else {
		t.Data = t.Data[:n]
	}
	t.Rows, t.Cols = rows, cols
	t.Grad, t.parents, t.backward, t.requiresGrad = nil, nil, nil, false
	return t
}

// FromFlat copies row-major data into an arena tensor.
func (ar *Arena) FromFlat(rows, cols int, data []float64) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: arena FromFlat %dx%d with %d values", rows, cols, len(data)))
	}
	t := ar.Uninit(rows, cols)
	copy(t.Data, data)
	return t
}

// MatMul returns a·b (no graph), using the shared cache-blocked kernel.
func (ar *Arena) MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := ar.Tensor(a.Rows, b.Cols)
	matMulInto(out.Data, a.Data, b.Data, a.Rows, a.Cols, b.Cols)
	return out
}

// MatMulT returns a·bᵀ (no graph).
func (ar *Arena) MatMulT(a, b *Tensor) *Tensor {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := ar.Uninit(a.Rows, b.Rows)
	matMulTInto(out.Data, a.Data, b.Data, a.Rows, a.Cols, b.Rows)
	return out
}

// Add returns a + b elementwise.
func (ar *Arena) Add(a, b *Tensor) *Tensor {
	sameShape(a, b, "arena Add")
	out := ar.Uninit(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddRow broadcasts a 1×n row onto every row of a.
func (ar *Arena) AddRow(a, row *Tensor) *Tensor {
	if row.Rows != 1 || row.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: arena AddRow %dx%d + %dx%d", a.Rows, a.Cols, row.Rows, row.Cols))
	}
	out := ar.Uninit(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		o := out.Data[i*a.Cols : (i+1)*a.Cols]
		x := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j := range o {
			o[j] = x[j] + row.Data[j]
		}
	}
	return out
}

// AddRowInPlace adds row (1×n) onto every row of a and returns a. The
// values are identical to AddRow; a's storage is reused instead of a fresh
// tensor, halving the footprint of bias adds whose input is a single-use
// intermediate (Linear.Infer's matmul output). a must be a materialized
// arena tensor the caller owns exclusively — never a view.
func (ar *Arena) AddRowInPlace(a, row *Tensor) *Tensor {
	if row.Rows != 1 || row.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: arena AddRowInPlace %dx%d + %dx%d", a.Rows, a.Cols, row.Rows, row.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		o := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j := range o {
			o[j] += row.Data[j]
		}
	}
	return a
}

// ReLUInPlace clamps a to max(a, 0) in place and returns a. Same ownership
// contract as AddRowInPlace.
func (ar *Arena) ReLUInPlace(a *Tensor) *Tensor {
	for i, v := range a.Data {
		if v <= 0 {
			a.Data[i] = 0
		}
	}
	return a
}

// Scale returns c·a.
func (ar *Arena) Scale(a *Tensor, c float64) *Tensor {
	out := ar.Uninit(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v * c
	}
	return out
}

// ReLU returns max(a, 0).
func (ar *Arena) ReLU(a *Tensor) *Tensor {
	out := ar.Uninit(a.Rows, a.Cols)
	for i, v := range a.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Softmax applies a row-wise softmax.
func (ar *Arena) Softmax(a *Tensor) *Tensor {
	out := ar.Uninit(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		rowSoftmaxInto(a.Data[i*a.Cols:(i+1)*a.Cols], out.Data[i*a.Cols:(i+1)*a.Cols])
	}
	return out
}

// MaskedFill writes fill where mask is false.
func (ar *Arena) MaskedFill(a *Tensor, mask []bool, fill float64) *Tensor {
	if len(mask) != len(a.Data) {
		panic(fmt.Sprintf("tensor: arena MaskedFill mask %d vs data %d", len(mask), len(a.Data)))
	}
	out := ar.Uninit(a.Rows, a.Cols)
	for i, v := range a.Data {
		if mask[i] {
			out.Data[i] = v
		} else {
			out.Data[i] = fill
		}
	}
	return out
}

// LayerNorm normalizes each row and applies the affine gamma/beta.
func (ar *Arena) LayerNorm(a, gamma, beta *Tensor, eps float64) *Tensor {
	if gamma.Cols != a.Cols || beta.Cols != a.Cols || gamma.Rows != 1 || beta.Rows != 1 {
		panic("tensor: arena LayerNorm parameter shape")
	}
	out := ar.Uninit(a.Rows, a.Cols)
	n := float64(a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		m := 0.0
		for _, v := range row {
			m += v
		}
		m /= n
		va := 0.0
		for _, v := range row {
			va += (v - m) * (v - m)
		}
		va /= n
		is := 1 / math.Sqrt(va+eps)
		o := out.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			o[j] = (v-m)*is*gamma.Data[j] + beta.Data[j]
		}
	}
	return out
}

// ConcatCols concatenates a (m×p) and b (m×q) into (m×(p+q)).
func (ar *Arena) ConcatCols(a, b *Tensor) *Tensor {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: arena ConcatCols rows %d vs %d", a.Rows, b.Rows))
	}
	out := ar.Uninit(a.Rows, a.Cols+b.Cols)
	for i := 0; i < a.Rows; i++ {
		copy(out.Data[i*out.Cols:], a.Data[i*a.Cols:(i+1)*a.Cols])
		copy(out.Data[i*out.Cols+a.Cols:], b.Data[i*b.Cols:(i+1)*b.Cols])
	}
	return out
}

// ConcatRows stacks a (p×n) over b (q×n).
func (ar *Arena) ConcatRows(a, b *Tensor) *Tensor {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: arena ConcatRows cols %d vs %d", a.Cols, b.Cols))
	}
	out := ar.Uninit(a.Rows+b.Rows, a.Cols)
	copy(out.Data, a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out
}

// GroupedAttention is the inference-mode block-diagonal attention (see the
// graph op of the same name): each row attends only within its group. Groups
// are disjoint, so when the total work is large (batched forwards
// concatenate every environment's trees into one call) contiguous group
// ranges fan out across GOMAXPROCS goroutines, each with its own scratch —
// per group the arithmetic is identical either way, so the result is
// bit-identical to the serial pass.
func (ar *Arena) GroupedAttention(q, k, v *Tensor, groups [][]int, scale float64) *Tensor {
	if q.Rows != k.Rows || q.Rows != v.Rows || q.Cols != k.Cols {
		panic(fmt.Sprintf("tensor: arena GroupedAttention q %dx%d k %dx%d v %dx%d",
			q.Rows, q.Cols, k.Rows, k.Cols, v.Rows, v.Cols))
	}
	d := q.Cols
	dv := v.Cols
	out := ar.Tensor(q.Rows, dv)
	maxS := 0
	work := 0
	for _, g := range groups {
		if len(g) > maxS {
			maxS = len(g)
		}
		work += len(g) * len(g) * (d + dv)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 || work < mmParallelFlops {
		scratch := ar.Uninit(1, 2*maxS).Data
		groupedAttnRange(out, q, k, v, groups, scale, scratch)
		return out
	}
	// The parallel fan-out lives in its own function: goroutine closures
	// heap-allocate their captures at function entry even on the serial
	// path, which would cost the hot loop an allocation per call.
	groupedAttnParallel(out, q, k, v, groups, scale, ar.Uninit(workers, 2*maxS), maxS, workers)
	return out
}

// groupedAttnParallel chunks contiguous group ranges across workers; scratch
// provides 2·maxS floats per worker, allocated by the caller (the arena is
// not goroutine-safe).
func groupedAttnParallel(out, q, k, v *Tensor, groups [][]int, scale float64, scratch *Tensor, maxS, workers int) {
	var wg sync.WaitGroup
	chunk := (len(groups) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, len(groups))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			groupedAttnRange(out, q, k, v, groups[lo:hi], scale,
				scratch.Data[w*2*maxS:(w+1)*2*maxS])
		}(w, lo, hi)
	}
	wg.Wait()
}

// groupedAttnRange attends every row of the given groups within its group,
// writing rows of out (disjoint across groups). scratch holds 2·maxS floats.
func groupedAttnRange(out, q, k, v *Tensor, groups [][]int, scale float64, scratch []float64) {
	d, dv := q.Cols, v.Cols
	half := len(scratch) / 2
	scores, prow := scratch[:half], scratch[half:]
	for _, g := range groups {
		s := len(g)
		for _, r1 := range g {
			qr := q.Data[r1*d : (r1+1)*d]
			for b, r2 := range g {
				kr := k.Data[r2*d : (r2+1)*d]
				dp := 0.0
				for j, qv := range qr {
					dp += qv * kr[j]
				}
				scores[b] = dp * scale
			}
			rowSoftmaxInto(scores[:s], prow[:s])
			or := out.Data[r1*dv : (r1+1)*dv]
			for b, p := range prow[:s] {
				if p == 0 {
					continue
				}
				vr := v.Data[g[b]*dv : (g[b]+1)*dv]
				for j, vv := range vr {
					or[j] += p * vv
				}
			}
		}
	}
}

// SegmentedAttention computes scaled-dot-product attention independently per
// segment: output rows [qOff[b], qOff[b+1]) attend over kv rows [kvOff[b],
// kvOff[b+1]) — the block-diagonal structure of batching independent
// environments. Per segment the result is bit-identical to
// MatMul(Softmax(Scale(MatMulT(q_b, k_b), scale)), v_b); segments fan out
// across GOMAXPROCS goroutines when the total work is large (every buffer is
// allocated from the arena before the goroutines start). Returns the stacked
// output (q.Rows × v.Cols) and each segment's attention probabilities
// (m_b×n_b arena tensors, in a recycled slice valid until the next call
// handing out the same slot after Reset).
func (ar *Arena) SegmentedAttention(q, k, v *Tensor, qOff, kvOff []int, scale float64) (*Tensor, []*Tensor) {
	nSeg := len(qOff) - 1
	if len(kvOff)-1 != nSeg {
		panic("tensor: SegmentedAttention offset lengths disagree")
	}
	if q.Cols != k.Cols || k.Rows != v.Rows {
		panic(fmt.Sprintf("tensor: SegmentedAttention q %dx%d k %dx%d v %dx%d",
			q.Rows, q.Cols, k.Rows, k.Cols, v.Rows, v.Cols))
	}
	d, dv := q.Cols, v.Cols
	out := ar.Tensor(q.Rows, dv) // zeroed: matMulInto accumulates
	probs := ar.tensorSlice(nSeg)
	scoreCells, work := 0, 0
	for b := 0; b < nSeg; b++ {
		m, n := qOff[b+1]-qOff[b], kvOff[b+1]-kvOff[b]
		scoreCells += m * n
		work += m * n * (d + dv)
	}
	scoresFlat := ar.Uninit(1, scoreCells).Data
	for b := 0; b < nSeg; b++ {
		probs[b] = ar.Uninit(qOff[b+1]-qOff[b], kvOff[b+1]-kvOff[b])
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > nSeg {
		workers = nSeg
	}
	if workers <= 1 || work < mmParallelFlops {
		segAttnRange(out, q, k, v, qOff, kvOff, scale, scoresFlat, probs, 0, nSeg, 0)
		return out, probs
	}
	segAttnParallel(out, q, k, v, qOff, kvOff, scale, scoresFlat, probs, workers)
	return out, probs
}

// segAttnParallel chunks contiguous segment ranges across workers. Every
// buffer was allocated by the caller; workers write disjoint rows of out and
// disjoint probs/scores slots, so no synchronization beyond the join is
// needed and the result matches the serial pass bit for bit.
func segAttnParallel(out, q, k, v *Tensor, qOff, kvOff []int, scale float64, scoresFlat []float64, probs []*Tensor, workers int) {
	nSeg := len(qOff) - 1
	var wg sync.WaitGroup
	chunk := (nSeg + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, nSeg)
		if lo >= hi {
			break
		}
		off := 0
		for b := 0; b < lo; b++ {
			off += (qOff[b+1] - qOff[b]) * (kvOff[b+1] - kvOff[b])
		}
		wg.Add(1)
		go func(lo, hi, off int) {
			defer wg.Done()
			segAttnRange(out, q, k, v, qOff, kvOff, scale, scoresFlat, probs, lo, hi, off)
		}(lo, hi, off)
	}
	wg.Wait()
}

// segAttnRange computes segments [lo, hi): scores into scoresFlat at soff,
// softmax into probs[b], and the probability-weighted value product into
// out's segment rows.
func segAttnRange(out, q, k, v *Tensor, qOff, kvOff []int, scale float64, scoresFlat []float64, probs []*Tensor, lo, hi, soff int) {
	d, dv := q.Cols, v.Cols
	for b := lo; b < hi; b++ {
		m, n := qOff[b+1]-qOff[b], kvOff[b+1]-kvOff[b]
		if m == 0 {
			continue
		}
		sc := scoresFlat[soff : soff+m*n]
		soff += m * n
		matMulTInto(sc, q.Data[qOff[b]*d:qOff[b+1]*d], k.Data[kvOff[b]*d:kvOff[b+1]*d], m, d, n)
		for i := range sc {
			sc[i] *= scale
		}
		pr := probs[b].Data
		for r := 0; r < m; r++ {
			rowSoftmaxInto(sc[r*n:(r+1)*n], pr[r*n:(r+1)*n])
		}
		matMulInto(out.Data[qOff[b]*dv:qOff[b+1]*dv], pr, v.Data[kvOff[b]*dv:kvOff[b+1]*dv], m, n, dv)
	}
}

// SetRows copies src into dst starting at row — the scatter half of
// batch assembly (the gather half is the zero-copy Rows view).
func (ar *Arena) SetRows(dst *Tensor, row int, src *Tensor) {
	if src.Cols != dst.Cols || row < 0 || row+src.Rows > dst.Rows {
		panic(fmt.Sprintf("tensor: arena SetRows %dx%d into %dx%d at %d",
			src.Rows, src.Cols, dst.Rows, dst.Cols, row))
	}
	copy(dst.Data[row*dst.Cols:(row+src.Rows)*dst.Cols], src.Data)
}

// Rows returns the row view a[lo:hi) — a slice header into a's storage, no
// copy. Valid for inference reads only.
func (ar *Arena) Rows(a *Tensor, lo, hi int) *Tensor {
	if lo < 0 || hi > a.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: arena Rows [%d:%d) of %d", lo, hi, a.Rows))
	}
	return ar.view(a.Data[lo*a.Cols:hi*a.Cols], hi-lo, a.Cols)
}

// GatherRows copies rows by index.
func (ar *Arena) GatherRows(a *Tensor, idx []int) *Tensor {
	out := ar.Uninit(len(idx), a.Cols)
	for r, i := range idx {
		if i < 0 || i >= a.Rows {
			panic(fmt.Sprintf("tensor: arena GatherRows index %d of %d", i, a.Rows))
		}
		copy(out.Data[r*a.Cols:(r+1)*a.Cols], a.Data[i*a.Cols:(i+1)*a.Cols])
	}
	return out
}

// RepeatRow tiles row (1×n) into (m×n) — the inference replacement for the
// ones-vector MatMul broadcast.
func (ar *Arena) RepeatRow(row *Tensor, m int) *Tensor {
	if row.Rows != 1 {
		panic(fmt.Sprintf("tensor: arena RepeatRow on %dx%d", row.Rows, row.Cols))
	}
	out := ar.Uninit(m, row.Cols)
	for i := 0; i < m; i++ {
		copy(out.Data[i*row.Cols:(i+1)*row.Cols], row.Data)
	}
	return out
}

// Transpose returns aᵀ.
func (ar *Arena) Transpose(a *Tensor) *Tensor {
	out := ar.Uninit(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[j*a.Rows+i] = a.Data[i*a.Cols+j]
		}
	}
	return out
}

// MeanRows reduces (m×n) to the column mean (1×n).
func (ar *Arena) MeanRows(a *Tensor) *Tensor {
	out := ar.Tensor(1, a.Cols)
	m := float64(a.Rows)
	if m == 0 {
		m = 1
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[j] += a.Data[i*a.Cols+j] / m
		}
	}
	return out
}

// Reshape returns a rows×cols view sharing a's storage (no copy, no graph).
func (ar *Arena) Reshape(a *Tensor, rows, cols int) *Tensor {
	if rows*cols != a.Rows*a.Cols {
		panic(fmt.Sprintf("tensor: arena Reshape %dx%d -> %dx%d", a.Rows, a.Cols, rows, cols))
	}
	return ar.view(a.Data, rows, cols)
}
