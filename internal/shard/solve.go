package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"vmr2l/internal/cluster"
	"vmr2l/internal/sim"
	"vmr2l/internal/solver"
)

// Engine pairs a solver with the registry-style name reported in per-shard
// stats (the winning engine of each shard's race).
type Engine struct {
	Name string
	S    solver.Solver
}

// Stat describes what happened on one shard: its size, the engine that won
// the race, and the shard-local (snapshot-relative) outcome. Fragment rates
// are local to the shard's sub-cluster; the live global truth is in
// Result.InitialFR/FinalFR after merge and repair.
type Stat struct {
	Shard     int     `json:"shard"`
	PMs       int     `json:"pms"`
	VMs       int     `json:"vms"`
	Engine    string  `json:"engine"`
	Steps     int     `json:"steps"`
	ElapsedMS float64 `json:"elapsed_ms"`
	InitialFR float64 `json:"initial_fr"`
	FinalFR   float64 `json:"final_fr"`
	TimedOut  bool    `json:"timed_out,omitempty"`
}

// Result is the outcome of a scale-out solve.
type Result struct {
	// Plan is the merged, validated and repaired global plan: it applies
	// cleanly to the live cluster as passed to Solve, in global ids, at
	// most MNL entries.
	Plan []sim.Migration
	// Stats partitions the pre-repair merged plan into valid / repaired /
	// dropped — the cross-shard staleness bill.
	Stats solver.RepairStats
	// Shards holds one entry per shard in partition order.
	Shards []Stat
	// OversizedGroups counts partition components that exceeded shard
	// capacity and were split (see Partition).
	OversizedGroups int
	// InitialFR / FinalFR are the true 16-core fragment rates of the live
	// cluster before and after the repaired plan.
	InitialFR float64
	FinalFR   float64
	// TimedOut reports the shared deadline expired during the race and the
	// shard plans are anytime best-so-far.
	TimedOut bool
}

// BatchSolver is implemented by engines that can roll many environments in
// lock-step with one batched forward per wave (policy.Agent). When a sharded
// solve runs exactly one such engine, every shard's sub-problem joins a
// single batched rollout instead of one independent solve per shard: the
// network amortizes one stacked GEMM chain over all shards per wave.
type BatchSolver interface {
	solver.Solver
	SolveBatch(ctx context.Context, envs []*sim.Env) error
}

// outcome is one engine's result in a race.
type outcome struct {
	name string
	res  solver.Result
	err  error
}

// better reports whether a beats b: lower final objective value, ties
// broken by fewer migrations (cheaper plan), then by engine order.
func better(a, b solver.Result) bool {
	if a.FinalValue != b.FinalValue {
		return a.FinalValue < b.FinalValue
	}
	return a.Steps < b.Steps
}

// race runs every engine on its own environment over init concurrently
// under the shared ctx and returns the winner. Engines that error are
// excluded; when all fail, the first error is returned.
func race(ctx context.Context, engines []Engine, init *cluster.Cluster, cfg sim.Config) (outcome, error) {
	if len(engines) == 1 {
		// Common case (sharding without a portfolio): skip the goroutine.
		res, err := solver.Evaluate(ctx, engines[0].S, init, cfg)
		return outcome{name: engines[0].Name, res: res, err: err}, err
	}
	outs := make([]outcome, len(engines))
	var wg sync.WaitGroup
	for i := range engines {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := solver.Evaluate(ctx, engines[i].S, init, cfg)
			outs[i] = outcome{name: engines[i].Name, res: res, err: err}
		}(i)
	}
	wg.Wait()
	best := -1
	for i := range outs {
		if outs[i].err != nil {
			continue
		}
		if best == -1 || better(outs[i].res, outs[best].res) {
			best = i
		}
	}
	if best == -1 {
		return outs[0], fmt.Errorf("shard: every engine failed: %w", outs[0].err)
	}
	return outs[best], nil
}

// remap rewrites a plan computed on a sub-cluster into parent ids.
func remap(m *cluster.SubMap, plan []sim.Migration) []sim.Migration {
	out := make([]sim.Migration, len(plan))
	for i, mg := range plan {
		mg.VM = m.VMs[mg.VM]
		mg.FromPM = m.PMs[mg.FromPM]
		mg.ToPM = m.PMs[mg.ToPM]
		out[i] = mg
	}
	return out
}

// truncate caps a plan at mnl migrations without splitting an atomic swap
// pair across the cut.
func truncate(plan []sim.Migration, mnl int) []sim.Migration {
	if len(plan) <= mnl {
		return plan
	}
	n := 0
	for n < len(plan) && n < mnl {
		if plan[n].Swap && n+1 < len(plan) && plan[n+1].Swap {
			if n+2 > mnl {
				break
			}
			n += 2
			continue
		}
		n++
	}
	return plan[:n]
}

// Solve runs the full scale-out pipeline against the live cluster: partition
// into opts.Shards parts (anti-affinity groups kept whole), solve every
// shard concurrently — racing all engines per shard under the shared ctx
// deadline and keeping each shard's best anytime plan — then remap to
// global ids, merge in shard order, truncate to cfg.MNL, and validate +
// repair against live under cfg.Obj. live is never mutated; the returned
// plan applies cleanly to it as of call time.
//
// The per-shard migration budget is cfg.MNL divided evenly across shards
// (minimum 1), so the merged plan respects the global MNL.
func Solve(ctx context.Context, live *cluster.Cluster, cfg sim.Config, engines []Engine, opts Options) (Result, error) {
	if len(engines) == 0 {
		return Result{}, errors.New("shard: no engines configured")
	}
	if cfg.MNL <= 0 {
		return Result{}, errors.New("shard: MNL must be positive")
	}
	if len(cfg.Obj.Terms) == 0 {
		cfg.Obj = sim.FR16()
	}
	parts, oversized := Partition(live, opts.Shards)
	k := len(parts)
	if k == 0 {
		return Result{}, errors.New("shard: cluster has no PMs")
	}
	// Extraction runs single-threaded (sub-cluster reads warm no caches but
	// the aggregate warm-up below does); each sub-cluster is then fully
	// independent storage, safe for its own goroutine.
	subs := make([]*cluster.Cluster, k)
	maps := make([]*cluster.SubMap, k)
	for i, p := range parts {
		subs[i], maps[i] = live.ExtractSub(p)
		// Warm the incremental aggregates once here so every engine clone
		// starts with O(1) fragment queries instead of re-scanning.
		subs[i].Fragment(cluster.DefaultFragCores)
	}
	per := cfg.MNL / k
	if per < 1 {
		per = 1
	}
	stats := make([]Stat, k)
	plans := make([][]sim.Migration, k)
	if bs, ok := batchEngine(engines); ok {
		// Cross-shard batching: all shard environments roll in one lock-step
		// batched rollout — one forward pass per wave serves every shard.
		shardCfg := cfg
		shardCfg.MNL = per
		envs := make([]*sim.Env, k)
		for i := range subs {
			envs[i] = sim.New(subs[i], shardCfg)
		}
		start := time.Now()
		if err := bs.SolveBatch(ctx, envs); err != nil {
			return Result{}, err
		}
		elapsed := float64(time.Since(start).Microseconds()) / 1000
		for i, env := range envs {
			plans[i] = remap(maps[i], env.Plan())
			stats[i] = Stat{
				Shard:  i,
				PMs:    len(subs[i].PMs),
				VMs:    len(subs[i].VMs),
				Engine: engines[0].Name,
				Steps:  env.StepsTaken(),
				// The batched rollout is one shared wall-clock span; each
				// shard reports the span it was part of.
				ElapsedMS: elapsed,
				InitialFR: subs[i].FragRate(cluster.DefaultFragCores),
				FinalFR:   env.FragRate(),
				TimedOut:  errors.Is(ctx.Err(), context.DeadlineExceeded),
			}
		}
		return merge(ctx, live, cfg, plans, stats, oversized)
	}
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			shardCfg := cfg
			shardCfg.MNL = per
			out, err := race(ctx, engines, subs[i], shardCfg)
			if err != nil {
				errs[i] = err
				return
			}
			plans[i] = remap(maps[i], out.res.Plan)
			stats[i] = Stat{
				Shard:     i,
				PMs:       len(subs[i].PMs),
				VMs:       len(subs[i].VMs),
				Engine:    out.name,
				Steps:     out.res.Steps,
				ElapsedMS: float64(out.res.Elapsed.Microseconds()) / 1000,
				InitialFR: out.res.InitialFR,
				FinalFR:   out.res.FinalFR,
				TimedOut:  out.res.TimedOut,
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	return merge(ctx, live, cfg, plans, stats, oversized)
}

// batchEngine reports whether the engine set is a single lock-step-capable
// solver — the condition under which sharding batches instead of racing.
func batchEngine(engines []Engine) (BatchSolver, bool) {
	if len(engines) != 1 {
		return nil, false
	}
	bs, ok := engines[0].S.(BatchSolver)
	return bs, ok
}

// merge is the shared tail of a scale-out solve: concatenate remapped shard
// plans in shard order, truncate to the global MNL, and validate + repair
// against the live cluster.
func merge(ctx context.Context, live *cluster.Cluster, cfg sim.Config, plans [][]sim.Migration, stats []Stat, oversized int) (Result, error) {
	global := make([]sim.Migration, 0, cfg.MNL)
	for _, p := range plans {
		global = append(global, p...)
	}
	global = truncate(global, cfg.MNL)
	rp := solver.RepairPlanObjective(live, global, cfg.Obj)
	return Result{
		Plan:            rp.Plan,
		Stats:           rp.Stats,
		Shards:          stats,
		OversizedGroups: oversized,
		InitialFR:       rp.InitialFR,
		FinalFR:         rp.FinalFR,
		TimedOut:        errors.Is(ctx.Err(), context.DeadlineExceeded),
	}, nil
}
