package shard

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"vmr2l/internal/cluster"
	"vmr2l/internal/heuristics"
	"vmr2l/internal/sim"
	"vmr2l/internal/solver"
	"vmr2l/internal/trace"
)

// noopEngine returns without migrating: the worst possible competitor.
type noopEngine struct{}

func (noopEngine) Meta() solver.Meta {
	return solver.Meta{Name: "noop", Anytime: true, Deterministic: true}
}
func (noopEngine) Solve(ctx context.Context, env *sim.Env) error { return nil }

// failEngine always errors.
type failEngine struct{}

func (failEngine) Meta() solver.Meta { return solver.Meta{Name: "fail"} }
func (failEngine) Solve(ctx context.Context, env *sim.Env) error {
	return errors.New("deliberate failure")
}

func testCluster(t *testing.T, seed int64) *cluster.Cluster {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return trace.MustProfile("workload-mid-small").GenerateFragmented(rng, 0.10, 12)
}

func TestPortfolioKeepsBestPlan(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	cfg := sim.DefaultConfig(8)

	// Find a mapping where HA actually has improving moves, so an empty
	// portfolio plan would be a real loss and not a vacuous tie with noop.
	var c *cluster.Cluster
	var solo solver.Result
	for seed := int64(1); seed <= 20; seed++ {
		c = testCluster(t, seed)
		res, err := solver.Evaluate(ctx, heuristics.HA{}, c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Steps > 0 {
			solo = res
			break
		}
		c = nil
	}
	if c == nil {
		t.Fatal("no seed produced an improvable mapping")
	}
	p := NewPortfolio(Engine{"noop", noopEngine{}}, Engine{"ha", heuristics.HA{}})
	port, err := solver.Evaluate(ctx, p, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The race must not lose to its best member.
	if port.FinalValue > solo.FinalValue+1e-9 {
		t.Fatalf("portfolio value %v worse than HA alone %v", port.FinalValue, solo.FinalValue)
	}
	if len(port.Plan) == 0 {
		t.Fatal("portfolio kept noop's empty plan although HA improved the cluster")
	}
}

func TestPortfolioSurvivesFailingEngine(t *testing.T) {
	c := testCluster(t, 2)
	p := NewPortfolio(Engine{"fail", failEngine{}}, Engine{"ha", heuristics.HA{}})
	res, err := solver.Evaluate(context.Background(), p, c, sim.DefaultConfig(6))
	if err != nil {
		t.Fatalf("portfolio failed although one engine succeeded: %v", err)
	}
	if res.FinalFR > res.InitialFR {
		t.Fatalf("FR worsened: %v -> %v", res.InitialFR, res.FinalFR)
	}
	if _, err := solver.Evaluate(context.Background(),
		NewPortfolio(Engine{"fail", failEngine{}}), c, sim.DefaultConfig(6)); err == nil {
		t.Fatal("all-engines-failed race must report an error")
	}
}

func TestShardedSolverRegistersLikeAnyEngine(t *testing.T) {
	c := testCluster(t, 3)
	s := &Solver{
		Engines: []Engine{{"ha", heuristics.HA{}}, {"vbpp", heuristics.VBPP{Alpha: 4}}},
		Opts:    Options{Shards: 4},
	}
	if meta := s.Meta(); meta.Name == "" || !meta.Anytime {
		t.Fatalf("bad meta: %+v", meta)
	}
	res, err := solver.Evaluate(context.Background(), s, c, sim.DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != len(res.Plan) {
		t.Fatalf("steps %d != plan length %d", res.Steps, len(res.Plan))
	}
	if res.Steps > 8 {
		t.Fatalf("plan exceeds MNL: %d", res.Steps)
	}
	if res.FinalFR > res.InitialFR {
		t.Fatalf("FR worsened: %v -> %v", res.InitialFR, res.FinalFR)
	}
}

func TestPortfolioHonorsDeadline(t *testing.T) {
	c := testCluster(t, 4)
	p := NewPortfolio(Engine{"ha", heuristics.HA{}}, Engine{"vbpp", heuristics.VBPP{}})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := solver.Evaluate(ctx, p, c, sim.DefaultConfig(50)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("race ignored its deadline: ran %v", elapsed)
	}
}
