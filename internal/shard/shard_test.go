package shard

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"vmr2l/internal/cluster"
	"vmr2l/internal/heuristics"
	"vmr2l/internal/sim"
	"vmr2l/internal/solver"
	"vmr2l/internal/trace"
)

// affinityCluster builds a fragmented mapping with a synthetic anti-affinity
// overlay, the input class the partitioner is designed for.
func affinityCluster(t *testing.T, seed int64, level int) *cluster.Cluster {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := trace.MustProfile("workload-mid-small").GenerateFragmented(rng, 0.10, 12)
	trace.AttachAffinity(c, level, rng)
	if err := c.Validate(); err != nil {
		t.Fatalf("seed %d: generated cluster invalid: %v", seed, err)
	}
	return c
}

func checkPartition(t *testing.T, c *cluster.Cluster, parts [][]int) {
	t.Helper()
	seen := make(map[int]bool)
	for _, p := range parts {
		for _, pm := range p {
			if pm < 0 || pm >= len(c.PMs) {
				t.Fatalf("partition references pm %d of %d", pm, len(c.PMs))
			}
			if seen[pm] {
				t.Fatalf("pm %d appears in two parts", pm)
			}
			seen[pm] = true
		}
	}
	if len(seen) != len(c.PMs) {
		t.Fatalf("partition covers %d of %d PMs", len(seen), len(c.PMs))
	}
}

func TestPartitionBalancedWithoutAffinity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := trace.MustProfile("workload-mid-small").GenerateMapping(rng)
	for _, k := range []int{1, 2, 4, 7, len(c.PMs), len(c.PMs) + 5} {
		parts, oversized := Partition(c, k)
		checkPartition(t, c, parts)
		if oversized != 0 {
			t.Errorf("k=%d: %d oversized components without affinity", k, oversized)
		}
		want := k
		if want > len(c.PMs) {
			want = len(c.PMs)
		}
		if len(parts) != want {
			t.Errorf("k=%d: got %d parts, want %d", k, len(parts), want)
		}
		min, max := len(c.PMs), 0
		for _, p := range parts {
			if len(p) < min {
				min = len(p)
			}
			if len(p) > max {
				max = len(p)
			}
		}
		if max-min > 1 {
			t.Errorf("k=%d: unbalanced parts: min %d, max %d", k, min, max)
		}
	}
}

func TestPartitionKeepsServiceGroupsWhole(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		c := affinityCluster(t, seed, 4)
		parts, oversized := Partition(c, 4)
		checkPartition(t, c, parts)
		if oversized > 0 {
			// The fallback fired: group-wholeness is not promised then.
			continue
		}
		partOf := make(map[int]int)
		for i, p := range parts {
			for _, pm := range p {
				partOf[pm] = i
			}
		}
		svcPart := map[int]int{}
		for i := range c.VMs {
			v := &c.VMs[i]
			if v.Service < 0 || !v.Placed() {
				continue
			}
			if prev, ok := svcPart[v.Service]; ok && prev != partOf[v.PM] {
				t.Fatalf("seed %d: service %d spans parts %d and %d", seed, v.Service, prev, partOf[v.PM])
			}
			svcPart[v.Service] = partOf[v.PM]
		}
	}
}

func TestPartitionOversizedGroupFallback(t *testing.T) {
	// One service per PM pair glues all PMs into a single component that
	// cannot fit in any shard: every PM hosts a VM of service 0.
	c := cluster.New(8, cluster.PMType{Name: "pm", CPUPerNuma: 16, MemPerNuma: 32})
	for pm := 0; pm < 8; pm++ {
		id := c.AddVM(cluster.VMType{CPU: 2, Mem: 4, Numas: 1})
		c.VMs[id].Service = 0
		if err := c.Place(id, pm, 0); err != nil {
			t.Fatal(err)
		}
	}
	c.EnableAntiAffinity()
	parts, oversized := Partition(c, 4)
	checkPartition(t, c, parts)
	if oversized != 1 {
		t.Fatalf("oversized = %d, want 1 (one component of 8 PMs vs capacity 2)", oversized)
	}
	if len(parts) != 4 {
		t.Fatalf("got %d parts, want 4 after the fallback split", len(parts))
	}
}

func TestExtractSubIndependenceAndRemap(t *testing.T) {
	c := affinityCluster(t, 2, 4)
	parts, _ := Partition(c, 3)
	before := c.Clone()
	totalVMs := 0
	for _, part := range parts {
		sub, m := c.ExtractSub(part)
		if err := sub.Validate(); err != nil {
			t.Fatalf("sub-cluster invalid: %v", err)
		}
		if sub.AntiAffinity != c.AntiAffinity {
			t.Fatal("anti-affinity flag not preserved")
		}
		totalVMs += len(sub.VMs)
		for local, global := range m.PMs {
			if sub.PMs[local].Numas != c.PMs[global].Numas {
				t.Fatalf("pm %d->%d: NUMA state differs", local, global)
			}
		}
		for local, global := range m.VMs {
			lv, gv := &sub.VMs[local], &c.VMs[global]
			if lv.CPU != gv.CPU || lv.Mem != gv.Mem || lv.Service != gv.Service {
				t.Fatalf("vm %d->%d: fields differ", local, global)
			}
			if m.PMs[lv.PM] != gv.PM {
				t.Fatalf("vm %d->%d: placed on pm %d, parent says %d", local, global, m.PMs[lv.PM], gv.PM)
			}
		}
		// Mutating the sub-cluster must not leak into the parent.
	mutate:
		for vm := range sub.VMs {
			for pm := range sub.PMs {
				if sub.CanHost(vm, pm) {
					if err := sub.Migrate(vm, pm, cluster.DefaultFragCores); err != nil {
						t.Fatal(err)
					}
					break mutate
				}
			}
		}
	}
	if totalVMs != c.CountPlaced() {
		t.Fatalf("subs carry %d VMs, parent has %d placed", totalVMs, c.CountPlaced())
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("parent corrupted by sub mutation: %v", err)
	}
	if c.FragRate(cluster.DefaultFragCores) != before.FragRate(cluster.DefaultFragCores) {
		t.Fatal("parent fragment rate changed after sub mutation")
	}
}

// TestShardedPlanAppliesCleanly is the acceptance property: on random
// anti-affinity clusters, the merged+repaired sharded plan validates with
// zero stale migrations against the full cluster, applies cleanly, never
// violates anti-affinity, and respects the MNL.
func TestShardedPlanAppliesCleanly(t *testing.T) {
	engines := []Engine{
		{Name: "ha", S: heuristics.HA{}},
		{Name: "vbpp", S: heuristics.VBPP{Alpha: 4}},
	}
	const mnl = 12
	for seed := int64(1); seed <= 6; seed++ {
		live := affinityCluster(t, seed, 4)
		for _, shards := range []int{1, 2, 4} {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			res, err := Solve(ctx, live, sim.Config{MNL: mnl, Obj: sim.FR16()}, engines, Options{Shards: shards})
			cancel()
			if err != nil {
				t.Fatalf("seed %d shards %d: %v", seed, shards, err)
			}
			if len(res.Plan) > mnl {
				t.Fatalf("seed %d shards %d: plan has %d migrations, MNL %d", seed, shards, len(res.Plan), mnl)
			}
			if len(res.Shards) < 1 || len(res.Shards) > shards {
				t.Fatalf("seed %d shards %d: %d shard stats", seed, shards, len(res.Shards))
			}
			for _, check := range solver.ValidatePlan(live, res.Plan) {
				if check.Status != solver.MigrationValid {
					t.Fatalf("seed %d shards %d: migration %+v is %s post-repair",
						seed, shards, check.Migration, check.Status)
				}
			}
			applied := live.Clone()
			ok, skipped := sim.ApplyPlan(applied, res.Plan)
			if skipped != 0 || ok != len(res.Plan) {
				t.Fatalf("seed %d shards %d: applied %d, skipped %d of %d",
					seed, shards, ok, skipped, len(res.Plan))
			}
			if err := applied.Validate(); err != nil {
				t.Fatalf("seed %d shards %d: cluster invalid after apply: %v", seed, shards, err)
			}
			got := applied.FragRate(cluster.DefaultFragCores)
			if diff := got - res.FinalFR; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("seed %d shards %d: reported final FR %v, applied FR %v", seed, shards, res.FinalFR, got)
			}
			if res.FinalFR > res.InitialFR+1e-9 {
				t.Fatalf("seed %d shards %d: plan worsened FR %v -> %v",
					seed, shards, res.InitialFR, res.FinalFR)
			}
		}
	}
}

func TestSolveRejectsBadInputs(t *testing.T) {
	live := affinityCluster(t, 1, 0)
	ctx := context.Background()
	if _, err := Solve(ctx, live, sim.Config{MNL: 5}, nil, Options{Shards: 2}); err == nil {
		t.Error("no engines accepted")
	}
	engines := []Engine{{Name: "ha", S: heuristics.HA{}}}
	if _, err := Solve(ctx, live, sim.Config{MNL: 0}, engines, Options{Shards: 2}); err == nil {
		t.Error("zero MNL accepted")
	}
	if _, err := Solve(ctx, &cluster.Cluster{}, sim.Config{MNL: 5}, engines, Options{Shards: 2}); err == nil {
		t.Error("empty cluster accepted")
	}
}

func TestTruncateKeepsSwapPairsAtomic(t *testing.T) {
	swap := func(vm int) sim.Migration { return sim.Migration{VM: vm, Swap: true} }
	plan := []sim.Migration{{VM: 0}, swap(1), swap(2), {VM: 3}}
	if got := truncate(plan, 2); len(got) != 1 {
		t.Errorf("truncate at 2 kept %d entries, want 1 (cannot split the pair)", len(got))
	}
	if got := truncate(plan, 3); len(got) != 3 {
		t.Errorf("truncate at 3 kept %d entries, want 3", len(got))
	}
	if got := truncate(plan, 10); len(got) != 4 {
		t.Errorf("truncate beyond len kept %d entries, want 4", len(got))
	}
}
