package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"vmr2l/internal/sim"
	"vmr2l/internal/solver"
)

// Names joins engine names with "+" — the shared spelling of an engine set
// in Meta strings, API response labels, and bench artifacts.
func Names(engines []Engine) string {
	parts := make([]string, len(engines))
	for i, e := range engines {
		parts[i] = e.Name
	}
	return strings.Join(parts, "+")
}

// replay executes a plan computed from the environment's exact current
// state, step by step, so the migrations land in env's recorded plan.
// Atomic swap pairs are re-executed through SwapStep.
func replay(env *sim.Env, plan []sim.Migration) error {
	for i := 0; i < len(plan) && !env.Done(); i++ {
		m := plan[i]
		if m.Swap && i+1 < len(plan) && plan[i+1].Swap {
			n := plan[i+1]
			i++
			if _, _, err := env.SwapStep(m.VM, n.VM); err != nil {
				return fmt.Errorf("shard: replaying swap (%d,%d): %w", m.VM, n.VM, err)
			}
			continue
		}
		if _, _, err := env.Step(m.VM, m.ToPM); err != nil {
			return fmt.Errorf("shard: replaying vm %d -> pm %d: %w", m.VM, m.ToPM, err)
		}
	}
	return nil
}

// Portfolio races several engines over the same snapshot under one shared
// context deadline and keeps the best anytime plan (lowest final objective
// value; ties broken by fewer migrations, then configuration order). It
// registers like any engine: racing N anytime solvers under the paper's
// five-second budget yields the best answer any of them can produce in the
// budget, at N times the CPU.
type Portfolio struct {
	Engines []Engine
}

// NewPortfolio builds a Portfolio over named engines.
func NewPortfolio(engines ...Engine) *Portfolio { return &Portfolio{Engines: engines} }

// Meta implements solver.Solver.
func (p *Portfolio) Meta() solver.Meta {
	return solver.Meta{
		Name:        fmt.Sprintf("Portfolio(%s)", Names(p.Engines)),
		Description: "races engines on the same snapshot under a shared deadline, keeps the best anytime plan",
		Anytime:     true,
		// The winner depends on wall-clock behaviour under the deadline.
		Deterministic: false,
	}
}

// Solve implements solver.Solver: race every engine on an independent copy
// of the environment's cluster, then replay the winning plan onto env.
func (p *Portfolio) Solve(ctx context.Context, env *sim.Env) error {
	if len(p.Engines) == 0 {
		return errors.New("shard: portfolio has no engines")
	}
	if env.Done() {
		return nil
	}
	cfg := sim.Config{MNL: env.MNL() - env.StepsTaken(), Obj: env.Objective()}
	out, err := race(ctx, p.Engines, env.Cluster(), cfg)
	if err != nil {
		return err
	}
	return replay(env, out.res.Plan)
}

// Solver is the registrable scale-out engine: partition the cluster, race
// the portfolio per shard, merge-then-repair, and execute the repaired
// global plan. It satisfies solver.Solver so it plugs into the service
// registry, benchmarks, and Evaluate like any single-machine engine; the
// richer per-shard statistics are available through the package-level Solve.
type Solver struct {
	Engines []Engine
	Opts    Options
}

// Meta implements solver.Solver.
func (s *Solver) Meta() solver.Meta {
	k := s.Opts.Shards
	if k < 1 {
		k = 1
	}
	return solver.Meta{
		Name:        fmt.Sprintf("Sharded(%d,%s)", k, Names(s.Engines)),
		Description: "anti-affinity-aware cluster sharding with a per-shard engine race and merge-then-repair",
		Anytime:     true,
		// Partitioning is deterministic but the per-shard race is not.
		Deterministic: false,
	}
}

// Solve implements solver.Solver.
func (s *Solver) Solve(ctx context.Context, env *sim.Env) error {
	if env.Done() {
		return nil
	}
	cfg := sim.Config{MNL: env.MNL() - env.StepsTaken(), Obj: env.Objective()}
	res, err := Solve(ctx, env.Cluster(), cfg, s.Engines, s.Opts)
	if err != nil {
		return err
	}
	return replay(env, res.Plan)
}
