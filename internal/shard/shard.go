// Package shard is the scale-out solving layer: it makes any registered
// engine work on clusters 10-50x larger than a single engine can sweep
// inside the paper's latency budget. The pipeline is
//
//	partition -> solve shards in parallel (racing a portfolio of engines
//	per shard under one shared deadline) -> remap per-shard plans to global
//	ids -> merge -> validate + repair against the full live cluster.
//
// The partitioner splits the PMs into balanced parts while keeping every
// anti-affinity service group inside one shard (transitively: PMs that host
// VMs of the same service are glued together), so each shard-local solver
// sees its constraint groups whole. Groups too large for one shard fall
// back to being split — this is safe, not merely tolerated: anti-affinity
// is a per-PM constraint and a shard's sub-cluster contains every VM hosted
// by its PMs, so no intra-shard placement can violate the constraint
// unseen, and migrations never cross shards. What an oversized group loses
// is only joint optimization across its full PM span.
//
// The merge-then-repair step is what makes the concatenated shard plans
// trustworthy at global scale: the merged plan is validated migration by
// migration against the full live cluster and stale entries are re-fitted
// under the job's own objective or dropped (solver.RepairPlanObjective), so
// cross-shard staleness — or session drift while the shards solved — is
// caught before the plan is reported.
package shard

import (
	"sort"

	"vmr2l/internal/cluster"
)

// Options configures a scale-out solve.
type Options struct {
	// Shards is the requested partition count. Values below 1 mean a single
	// shard; the effective count is also capped at the number of PMs.
	Shards int
}

// Partition splits the PMs of c into at most k balanced parts (each sorted
// ascending; every PM lands in exactly one part). When anti-affinity is
// enabled, PMs hosting VMs of the same service group are kept in one part,
// transitively: two services sharing a PM glue their PM sets together.
// Components larger than the per-part capacity ceil(PMs/k) are split across
// parts — the documented fallback for groups that exceed shard capacity
// (see the package comment for why this stays correct) — and counted in
// oversized. Packing is longest-processing-time onto the currently
// smallest part, so part sizes stay within one component of each other.
func Partition(c *cluster.Cluster, k int) (parts [][]int, oversized int) {
	n := len(c.PMs)
	if n == 0 {
		return nil, 0
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if k == 1 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return [][]int{all}, 0
	}

	// Union-find over PMs; service groups glue their hosting PMs together.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	if c.AntiAffinity {
		svcPM := map[int]int{} // service -> first hosting PM seen
		for i := range c.VMs {
			v := &c.VMs[i]
			if v.Service < 0 || !v.Placed() {
				continue
			}
			if first, ok := svcPM[v.Service]; ok {
				union(first, v.PM)
			} else {
				svcPM[v.Service] = v.PM
			}
		}
	}

	// Collect components in PM-id order (deterministic).
	compOf := map[int]int{}
	var comps [][]int
	for pm := 0; pm < n; pm++ {
		r := find(pm)
		ci, ok := compOf[r]
		if !ok {
			ci = len(comps)
			compOf[r] = ci
			comps = append(comps, nil)
		}
		comps[ci] = append(comps[ci], pm)
	}

	// Split components that exceed the per-part capacity (fallback), then
	// pack longest-first onto the smallest part.
	cap := (n + k - 1) / k
	var units [][]int
	for _, comp := range comps {
		if len(comp) > cap {
			oversized++
			for start := 0; start < len(comp); start += cap {
				end := start + cap
				if end > len(comp) {
					end = len(comp)
				}
				units = append(units, comp[start:end])
			}
		} else {
			units = append(units, comp)
		}
	}
	sort.SliceStable(units, func(i, j int) bool {
		if len(units[i]) != len(units[j]) {
			return len(units[i]) > len(units[j])
		}
		return units[i][0] < units[j][0]
	})
	parts = make([][]int, k)
	for _, u := range units {
		best := 0
		for i := 1; i < k; i++ {
			if len(parts[i]) < len(parts[best]) {
				best = i
			}
		}
		parts[best] = append(parts[best], u...)
	}
	// Drop parts that stayed empty (k close to n with big components) and
	// sort each part for deterministic extraction order.
	out := parts[:0]
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		sort.Ints(p)
		out = append(out, p)
	}
	return out, oversized
}
