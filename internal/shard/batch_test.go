package shard

import (
	"context"
	"testing"
	"time"

	"vmr2l/internal/cluster"
	"vmr2l/internal/policy"
	"vmr2l/internal/sim"
	"vmr2l/internal/solver"
)

var _ BatchSolver = (*policy.Agent)(nil)

// TestShardedBatchSolverPath runs a sharded solve with a single policy
// engine, which routes through the cross-shard batched rollout: all shard
// environments lock-step through one batched forward per wave. The merged
// plan must satisfy the same acceptance properties as the raced path, and
// the per-shard stats must report the batching engine.
func TestShardedBatchSolverPath(t *testing.T) {
	m := policy.New(policy.Config{
		DModel: 16, Hidden: 24, Blocks: 1,
		Extractor: policy.SparseAttention, Action: policy.TwoStage, Seed: 4,
	})
	engines := []Engine{{Name: "vmr2l", S: &policy.Agent{Model: m, Opts: policy.SampleOpts{Greedy: true}}}}
	const mnl = 12
	for seed := int64(1); seed <= 3; seed++ {
		live := affinityCluster(t, seed, 3)
		for _, shards := range []int{2, 4} {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			res, err := Solve(ctx, live, sim.Config{MNL: mnl, Obj: sim.FR16()}, engines, Options{Shards: shards})
			cancel()
			if err != nil {
				t.Fatalf("seed %d shards %d: %v", seed, shards, err)
			}
			if len(res.Plan) > mnl {
				t.Fatalf("seed %d shards %d: plan has %d migrations, MNL %d", seed, shards, len(res.Plan), mnl)
			}
			if len(res.Shards) == 0 {
				t.Fatalf("seed %d shards %d: no shard stats", seed, shards)
			}
			for _, st := range res.Shards {
				if st.Engine != "vmr2l" {
					t.Fatalf("seed %d shards %d: shard %d engine %q", seed, shards, st.Shard, st.Engine)
				}
			}
			for _, check := range solver.ValidatePlan(live, res.Plan) {
				if check.Status != solver.MigrationValid {
					t.Fatalf("seed %d shards %d: migration %+v is %s post-repair",
						seed, shards, check.Migration, check.Status)
				}
			}
			applied := live.Clone()
			ok, skipped := sim.ApplyPlan(applied, res.Plan)
			if skipped != 0 || ok != len(res.Plan) {
				t.Fatalf("seed %d shards %d: applied %d, skipped %d of %d",
					seed, shards, ok, skipped, len(res.Plan))
			}
			if err := applied.Validate(); err != nil {
				t.Fatalf("seed %d shards %d: cluster invalid after apply: %v", seed, shards, err)
			}
			if got := applied.FragRate(cluster.DefaultFragCores); got-res.FinalFR > 1e-9 || res.FinalFR-got > 1e-9 {
				t.Fatalf("seed %d shards %d: reported final FR %v, applied FR %v", seed, shards, res.FinalFR, got)
			}
		}
	}
}

// TestShardedBatchMatchesPerShardSequential pins the cross-shard batching
// equivalence: because the batched rollout is bit-identical per environment,
// a sharded solve through SolveBatch must produce exactly the plan obtained
// by solving each shard sequentially with the engine's derived per-shard
// seeds.
func TestShardedBatchMatchesPerShardSequential(t *testing.T) {
	m := policy.New(policy.Config{
		DModel: 16, Hidden: 24, Blocks: 1,
		Extractor: policy.SparseAttention, Action: policy.TwoStage, Seed: 6,
	})
	ag := &policy.Agent{Model: m, Opts: policy.SampleOpts{Greedy: true}, Seed: 17}
	live := affinityCluster(t, 5, 3)
	cfg := sim.Config{MNL: 8, Obj: sim.FR16()}
	const shards = 3
	res, err := Solve(context.Background(), live, cfg, []Engine{{Name: "vmr2l", S: ag}}, Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	// Re-derive the per-shard sub-problems exactly as Solve does and run
	// each sequentially with the seed SolveBatch assigns to that index.
	parts, _ := Partition(live, shards)
	per := cfg.MNL / len(parts)
	if per < 1 {
		per = 1
	}
	var want []sim.Migration
	for i, p := range parts {
		sub, smap := live.ExtractSub(p)
		sub.Fragment(cluster.DefaultFragCores)
		env := sim.New(sub, sim.Config{MNL: per, Obj: cfg.Obj})
		seq := &policy.Agent{Model: m, Opts: ag.Opts, Seed: ag.Seed + 1_000_003*int64(i)}
		if err := seq.Solve(context.Background(), env); err != nil {
			t.Fatal(err)
		}
		want = append(want, remap(smap, env.Plan())...)
	}
	// The live cluster has not drifted between solve and repair, so repair
	// keeps every valid migration: the repaired plan must equal the merged
	// sequential plan truncated to the global MNL, migration for migration.
	want = truncate(want, cfg.MNL)
	if len(res.Plan) != len(want) {
		t.Fatalf("batched plan length %d != sequential %d", len(res.Plan), len(want))
	}
	for i := range want {
		if res.Plan[i] != want[i] {
			t.Fatalf("migration %d: batched %+v != sequential %+v", i, res.Plan[i], want[i])
		}
	}
	total := 0
	for _, st := range res.Shards {
		total += st.Steps
	}
	if total != len(want) {
		t.Fatalf("batched shard steps %d != sequential merged steps %d", total, len(want))
	}
}
