package sim

import (
	"math/rand"
	"testing"

	"vmr2l/internal/cluster"
)

// buildIncrCluster makes a small random cluster with headroom for churn.
func buildIncrCluster(rng *rand.Rand) *cluster.Cluster {
	pt := cluster.PMType{Name: "t", CPUPerNuma: 16, MemPerNuma: 64}
	c := cluster.New(10, pt)
	for i := 0; i < 30; i++ {
		vt := cluster.VMType{CPU: 1 + rng.Intn(4), Numas: 1}
		vt.Mem = vt.CPU * 2
		id := c.AddVM(vt)
		if rng.Intn(5) > 0 {
			_ = c.Place(id, rng.Intn(10), rng.Intn(cluster.NumasPerPM))
		}
	}
	return c
}

// assertFeaturesEqual compares every feature row and HostPM bit-for-bit.
func assertFeaturesEqual(t *testing.T, step int, got, want *Features) {
	t.Helper()
	if len(got.PM) != len(want.PM) || len(got.VM) != len(want.VM) {
		t.Fatalf("step %d: shape (%d,%d) != (%d,%d)",
			step, len(got.PM), len(got.VM), len(want.PM), len(want.VM))
	}
	for i := range want.PM {
		for col, w := range want.PM[i] {
			if got.PM[i][col] != w {
				t.Fatalf("step %d: PM[%d][%d] = %v, want %v", step, i, col, got.PM[i][col], w)
			}
		}
	}
	for v := range want.VM {
		for col, w := range want.VM[v] {
			if got.VM[v][col] != w {
				t.Fatalf("step %d: VM[%d][%d] = %v, want %v", step, v, col, got.VM[v][col], w)
			}
		}
	}
	for v, w := range want.HostPM {
		if got.HostPM[v] != w {
			t.Fatalf("step %d: HostPM[%d] = %d, want %d", step, v, got.HostPM[v], w)
		}
	}
}

// TestUpdateIntoBitParity drives random mutation streams through the journal
// + UpdateInto pipeline and checks bit-parity against a fresh full
// extraction after every step — the tentpole's part (2) contract.
func TestUpdateIntoBitParity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		c := buildIncrCluster(rng)
		var inc Features
		res := inc.UpdateInto(c, nil, nil, c.DirtyFull())
		if !res.PMAll || !res.VMAll {
			t.Fatal("first update must report all rows dirty")
		}
		c.ClearDirty()
		assertFeaturesEqual(t, -1, &inc, Extract(c))
		for step := 0; step < 60; step++ {
			switch rng.Intn(5) {
			case 0, 1:
				_ = c.Migrate(rng.Intn(len(c.VMs)), rng.Intn(len(c.PMs)), cluster.DefaultFragCores)
			case 2:
				_ = c.Remove(rng.Intn(len(c.VMs)))
			case 3:
				_ = c.Place(rng.Intn(len(c.VMs)), rng.Intn(len(c.PMs)), rng.Intn(cluster.NumasPerPM))
			case 4:
				_ = c.SetHealth(rng.Intn(len(c.PMs)), cluster.Health(rng.Intn(3)))
			}
			inc.UpdateInto(c, c.DirtyPMs(), c.DirtyVMs(), c.DirtyFull())
			c.ClearDirty()
			assertFeaturesEqual(t, step, &inc, Extract(c))
		}
	}
}

// TestUpdateIntoReportedRowsCoverChanges verifies the no-silent-loss side of
// the result: every row whose normalized values differ from the previous
// step is covered by the reported dirty rows (or an All flag).
func TestUpdateIntoReportedRowsCoverChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := buildIncrCluster(rng)
	var inc Features
	inc.UpdateInto(c, nil, nil, true)
	c.ClearDirty()
	prev := Extract(c)
	for step := 0; step < 150; step++ {
		_ = c.Migrate(rng.Intn(len(c.VMs)), rng.Intn(len(c.PMs)), cluster.DefaultFragCores)
		res := inc.UpdateInto(c, c.DirtyPMs(), c.DirtyVMs(), c.DirtyFull())
		c.ClearDirty()
		cur := Extract(c)
		if !res.PMAll {
			reported := map[int]bool{}
			for _, i := range res.PMRows {
				reported[i] = true
			}
			for i := range cur.PM {
				for col := range cur.PM[i] {
					if cur.PM[i][col] != prev.PM[i][col] && !reported[i] {
						t.Fatalf("step %d: PM row %d changed but was not reported", step, i)
					}
				}
			}
		}
		if !res.VMAll {
			reported := map[int]bool{}
			for _, v := range res.VMRows {
				reported[v] = true
			}
			for v := range cur.VM {
				for col := range cur.VM[v] {
					if cur.VM[v][col] != prev.VM[v][col] && !reported[v] {
						t.Fatalf("step %d: VM row %d changed but was not reported", step, v)
					}
				}
			}
		}
		prev = cur
	}
}

// TestUpdateIntoStaleAfterExtractInto pins the invalidation contract: a
// full in-place extraction through the non-incremental path goes stale and
// the next UpdateInto must not trust the raw cache.
func TestUpdateIntoStaleAfterExtractInto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := buildIncrCluster(rng)
	var f Features
	f.UpdateInto(c, nil, nil, true)
	c.ClearDirty()
	ExtractInto(&f, c) // destroys the raw cache (normalizes in place)
	_ = c.Migrate(0, 3, cluster.DefaultFragCores)
	res := f.UpdateInto(c, c.DirtyPMs(), c.DirtyVMs(), c.DirtyFull())
	if !res.PMAll || !res.VMAll {
		t.Fatal("UpdateInto after ExtractInto must fall back to a full refresh")
	}
	assertFeaturesEqual(t, 0, &f, Extract(c))
}

// BenchmarkUpdateIntoSteady measures the steady-state incremental update
// (one migration per step) and pins zero allocations.
func BenchmarkUpdateIntoSteady(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := buildIncrCluster(rng)
	var f Features
	f.UpdateInto(c, nil, nil, true)
	c.ClearDirty()
	// Find a VM that can bounce between two PMs.
	vm, pmA, pmB := -1, -1, -1
	for v := range c.VMs {
		if !c.VMs[v].Placed() {
			continue
		}
		for p := range c.PMs {
			if c.CanHost(v, p) {
				vm, pmA, pmB = v, c.VMs[v].PM, p
				break
			}
		}
		if vm >= 0 {
			break
		}
	}
	if vm < 0 {
		b.Skip("no bounceable VM in fixture")
	}
	dst := pmB
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Migrate(vm, dst, cluster.DefaultFragCores); err != nil {
			b.Fatal(err)
		}
		f.UpdateInto(c, c.DirtyPMs(), c.DirtyVMs(), c.DirtyFull())
		c.ClearDirty()
		if dst == pmB {
			dst = pmA
		} else {
			dst = pmB
		}
	}
}
