package sim

import "vmr2l/internal/cluster"

// Incremental feature extraction. One policy step migrates one VM, so
// between consecutive forwards only the source PM, the destination PM and
// the moved VM have new raw features — but the paper's per-column min-max
// normalization is a global: a raw change that moves a column's min or max
// rescales every row. UpdateInto therefore keeps the raw (pre-normalization)
// rows cached, re-extracts only the dirty machines, and re-verifies every
// column's (lo, hi) against a fresh scan each call. When the normalizers are
// bitwise stable only the dirty rows are renormalized; when any column's
// bounds moved, that whole side (PM or VM) is renormalized from the raw
// cache and reported all-dirty. Either way the resulting rows are
// bit-identical to a full ExtractInto — correctness first, fast path only
// when the globals are stable.
//
// The (lo, hi) verification is a full column rescan: O((nPM+nVM)·dim)
// float compares per step. That is deliberate — exact, branch-trivial, and
// three orders of magnitude cheaper than the embedding GEMMs the cache
// saves; a min/max tracking structure could drop it to O(dirty) but would
// put a data structure between the features and their proof of parity.

// UpdateResult reports which normalized feature rows changed in an
// UpdateInto call. When PMAll (resp. VMAll) is set, every row of that side
// must be treated as changed and PMRows (resp. VMRows) is meaningless.
// The row slices alias internal scratch (or the caller's dirty slices) and
// are valid only until the next UpdateInto.
type UpdateResult struct {
	PMAll, VMAll bool
	PMRows       []int
	VMRows       []int
}

// UpdateInto incrementally re-extracts the features of c into f. dirtyPM and
// dirtyVM are the machine ids touched since the features were last in sync —
// normally the cluster journal's DirtyPMs/DirtyVMs — each id unique and in
// range; they may over-approximate (rolled-back mutations) but must never
// omit a changed machine. full forces a complete refresh (pass
// c.DirtyFull(), and set it on the first call for a fresh Features). The
// returned rows are bit-identical to ExtractInto on the same state.
//
// The VM dirty set is expanded internally: a VM row embeds its host PM's raw
// features and fragment deltas, so every VM currently hosted on a dirty PM
// is re-extracted too.
func (f *Features) UpdateInto(c *cluster.Cluster, dirtyPM, dirtyVM []int, full bool) UpdateResult {
	nPM, nVM := len(c.PMs), len(c.VMs)
	if full || !f.rawValid || len(f.PM) != nPM || len(f.VM) != nVM {
		f.refreshAll(c)
		return UpdateResult{PMAll: true, VMAll: true}
	}

	// Expand the VM dirty set: directly-touched VMs plus every VM hosted on
	// a dirty PM (their rows carry the host's raw features). Dedup with an
	// epoch-stamped mark so the scratch list stays bounded.
	f.markEpoch++
	f.vmMark = resizeMarks(f.vmMark, nVM)
	vmRows := f.vmDirty[:0]
	for _, v := range dirtyVM {
		if f.vmMark[v] != f.markEpoch {
			f.vmMark[v] = f.markEpoch
			vmRows = append(vmRows, v)
		}
	}
	for _, p := range dirtyPM {
		for _, v := range c.PMs[p].VMs {
			if f.vmMark[v] != f.markEpoch {
				f.vmMark[v] = f.markEpoch
				vmRows = append(vmRows, v)
			}
		}
	}
	f.vmDirty = vmRows

	// Re-extract raw rows for the dirty machines only.
	for _, p := range dirtyPM {
		pmRaw(&c.PMs[p], f.rawPM[p*PMFeatDim:(p+1)*PMFeatDim])
	}
	for _, v := range vmRows {
		row := f.rawVM[v*VMFeatDim : (v+1)*VMFeatDim]
		for i := range row {
			row[i] = 0
		}
		f.fillRawVM(c, v, row)
	}

	// Verify the normalizers against a fresh scan; renormalize a side fully
	// when any of its column bounds moved.
	res := UpdateResult{}
	if f.boundsStable(f.rawPM, PMFeatDim, f.pmLo, f.pmHi) {
		for _, p := range dirtyPM {
			normRow(f.PM[p], f.rawPM[p*PMFeatDim:(p+1)*PMFeatDim], f.pmLo, f.pmHi)
		}
		res.PMRows = dirtyPM
	} else {
		copy(f.pmLo, f.scanLo)
		copy(f.pmHi, f.scanHi)
		for i := range f.PM {
			normRow(f.PM[i], f.rawPM[i*PMFeatDim:(i+1)*PMFeatDim], f.pmLo, f.pmHi)
		}
		res.PMAll = true
	}
	if f.boundsStable(f.rawVM, VMFeatDim, f.vmLo, f.vmHi) {
		for _, v := range vmRows {
			normRow(f.VM[v], f.rawVM[v*VMFeatDim:(v+1)*VMFeatDim], f.vmLo, f.vmHi)
		}
		res.VMRows = vmRows
	} else {
		copy(f.vmLo, f.scanLo)
		copy(f.vmHi, f.scanHi)
		for v := range f.VM {
			normRow(f.VM[v], f.rawVM[v*VMFeatDim:(v+1)*VMFeatDim], f.vmLo, f.vmHi)
		}
		res.VMAll = true
	}
	return res
}

// refreshAll rebuilds the full feature state — normalized rows, raw caches
// and normalizer bounds — bit-identically to ExtractInto.
func (f *Features) refreshAll(c *cluster.Cluster) {
	nPM, nVM := len(c.PMs), len(c.VMs)
	f.reshape(nPM, nVM)
	f.rawPM = resizeZeroed(f.rawPM, nPM*PMFeatDim)
	f.rawVM = resizeZeroed(f.rawVM, nVM*VMFeatDim)
	for i := range c.PMs {
		pmRaw(&c.PMs[i], f.rawPM[i*PMFeatDim:(i+1)*PMFeatDim])
	}
	for v := range c.VMs {
		f.fillRawVM(c, v, f.rawVM[v*VMFeatDim:(v+1)*VMFeatDim])
	}
	copy(f.pmFlat, f.rawPM)
	copy(f.vmFlat, f.rawVM)
	f.pmLo, f.pmHi = normalizeCaptured(f.PM, f.pmLo, f.pmHi)
	f.vmLo, f.vmHi = normalizeCaptured(f.VM, f.vmLo, f.vmHi)
	f.rawValid = true
}

// fillRawVM writes VM v's raw feature row (the exact pre-normalization
// values fill computes) into row, which must be zeroed, and refreshes
// HostPM[v].
func (f *Features) fillRawVM(c *cluster.Cluster, v int, row []float64) {
	vm := &c.VMs[v]
	f.HostPM[v] = vm.PM
	row[0] = float64(vm.CPUPerNuma())
	row[1] = float64(vm.MemPerNuma())
	if vm.Numas == 2 {
		row[2] = float64(vm.CPUPerNuma())
		row[3] = float64(vm.MemPerNuma())
	}
	if vm.Placed() {
		p := &c.PMs[vm.PM]
		for j := 0; j < cluster.NumasPerPM; j++ {
			n := p.Numas[j]
			occupies := vm.Numas == 2 || vm.Numa == j
			if !occupies {
				continue
			}
			before := n.Fragment(cluster.DefaultFragCores)
			after := (n.FreeCPU() + vm.CPUPerNuma()) % cluster.DefaultFragCores
			row[4+j] = float64(after - before)
		}
		pmRaw(p, row[6:])
	}
}

// boundsStable scans flat's per-column min/max into the scan scratch and
// reports whether they are bitwise equal to the cached bounds. The fresh
// scan stays in f.scanLo/f.scanHi for the caller to adopt on instability.
func (f *Features) boundsStable(flat []float64, dim int, lo, hi []float64) bool {
	f.scanLo = resizeFloatsSim(f.scanLo, dim)
	f.scanHi = resizeFloatsSim(f.scanHi, dim)
	if len(flat) == 0 {
		return true
	}
	copy(f.scanLo, flat[:dim])
	copy(f.scanHi, flat[:dim])
	for base := dim; base < len(flat); base += dim {
		for col := 0; col < dim; col++ {
			v := flat[base+col]
			if v < f.scanLo[col] {
				f.scanLo[col] = v
			}
			if v > f.scanHi[col] {
				f.scanHi[col] = v
			}
		}
	}
	for col := 0; col < dim; col++ {
		if f.scanLo[col] != lo[col] || f.scanHi[col] != hi[col] {
			return false
		}
	}
	return true
}

// normRow renormalizes one row from its raw values with the cached bounds —
// the same arithmetic normalize applies, element for element.
func normRow(dst, raw, lo, hi []float64) {
	for col := range dst {
		span := hi[col] - lo[col]
		if span == 0 {
			dst[col] = 0
		} else {
			dst[col] = (raw[col] - lo[col]) / span
		}
	}
}

// normalizeCaptured is normalize with the per-column bounds recorded into
// (possibly reused) lo/hi slices. normalize delegates here so the two can
// never drift numerically.
func normalizeCaptured(rows [][]float64, lo, hi []float64) ([]float64, []float64) {
	if len(rows) == 0 {
		return lo[:0], hi[:0]
	}
	dim := len(rows[0])
	lo = resizeFloatsSim(lo, dim)
	hi = resizeFloatsSim(hi, dim)
	for col := 0; col < dim; col++ {
		l, h := rows[0][col], rows[0][col]
		for _, r := range rows {
			if r[col] < l {
				l = r[col]
			}
			if r[col] > h {
				h = r[col]
			}
		}
		span := h - l
		for _, r := range rows {
			if span == 0 {
				r[col] = 0
			} else {
				r[col] = (r[col] - l) / span
			}
		}
		lo[col], hi[col] = l, h
	}
	return lo, hi
}

// resizeMarks returns s with length n, zero-filling only grown storage (the
// epoch scheme makes stale stamps harmless).
func resizeMarks(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// resizeFloatsSim returns dst with length n, reallocating only when needed.
func resizeFloatsSim(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}
