package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestMoveGainMatchesStepReward: the analytic gain used by every heuristic
// and search solver must agree exactly with the simulator's reward.
func TestMoveGainMatchesStepReward(t *testing.T) {
	objectives := map[string]Objective{
		"fr16":       FR16(),
		"mixed-vm":   MixedVMType(0.4),
		"mixed-mem":  MixedResource(0.6),
		"pure-fr64":  MixedVMType(1),
		"pure-mem64": MixedResource(1),
	}
	for name, obj := range objectives {
		obj := obj
		f := func(seed int64) bool {
			c := tinyMapping(seed)
			e := New(c, Config{MNL: 50, Obj: obj})
			rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
			for step := 0; step < 8 && !e.Done(); step++ {
				acts := TopActions(e.Cluster(), obj, 0)
				if len(acts) == 0 {
					break
				}
				a := acts[rng.Intn(len(acts))]
				want := a.Gain
				got, _, err := e.Step(a.VM, a.PM)
				if err != nil {
					t.Logf("%s: step failed: %v", name, err)
					return false
				}
				if math.Abs(got-want) > 1e-9 {
					t.Logf("%s: reward %v != analytic gain %v (vm %d pm %d)", name, got, want, a.VM, a.PM)
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestTopActionsSortedAndLegal(t *testing.T) {
	c := tinyMapping(21)
	obj := FR16()
	acts := TopActions(c, obj, 0)
	for i, a := range acts {
		if !c.CanHost(a.VM, a.PM) {
			t.Fatalf("illegal action in TopActions: %+v", a)
		}
		if i > 0 && acts[i-1].Gain < a.Gain {
			t.Fatal("actions not sorted by gain")
		}
	}
	k := 5
	top := TopActions(c, obj, k)
	if len(acts) >= k && len(top) != k {
		t.Fatalf("k-limit ignored: %d", len(top))
	}
	if len(top) > 0 && len(acts) > 0 && top[0] != acts[0] {
		t.Fatal("top-k disagrees with full enumeration")
	}
}

func TestRemovalInsertGainIllegalCases(t *testing.T) {
	c := tinyMapping(22)
	obj := FR16()
	if _, ok := RemovalGain(c, obj, -1); ok {
		t.Error("negative vm accepted")
	}
	if _, ok := RemovalGain(c, obj, len(c.VMs)); ok {
		t.Error("out-of-range vm accepted")
	}
	// Insert onto the VM's own PM is illegal.
	if _, ok := InsertGain(c, obj, 0, c.VMs[0].PM); ok {
		t.Error("insert onto own PM accepted")
	}
	if _, ok := MoveGain(c, obj, 0, c.VMs[0].PM); ok {
		t.Error("move onto own PM accepted")
	}
}
