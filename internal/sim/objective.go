// Package sim provides the Gym-style VM rescheduling environment of VMR2L:
// an episode is one VMR request of MNL migration steps; actions are (VM, PM)
// tuples; rewards are the dense fragment deltas of paper Eq. 8-9, with
// variants for the FR-goal objective (Eq. 10-11) and the mixed objectives of
// Eq. 12. The environment is deterministic: given a state and an action the
// next state is exact, which is what enables offline training and the
// risk-seeking evaluation pipeline.
package sim

import (
	"fmt"
	"strconv"
	"strings"

	"vmr2l/internal/cluster"
)

// Resource selects which resource a fragment term measures.
type Resource int

// Resources understood by objective terms.
const (
	CPU Resource = iota
	Mem
)

// Term is one weighted fragment-rate component of an objective.
type Term struct {
	Res    Resource
	Chunk  int // fragment granularity: X cores or X GB
	Weight float64
}

// Objective is a convex combination of fragment rates (paper Eq. 12).
// The default, FR16, is the single-term 16-core CPU fragment rate.
type Objective struct {
	Terms []Term
}

// FR16 returns the paper's primary objective: 16-core CPU fragment rate.
func FR16() Objective {
	return Objective{Terms: []Term{{Res: CPU, Chunk: cluster.DefaultFragCores, Weight: 1}}}
}

// MixedVMType returns Obj_λ = λ·FR64 + (1-λ)·FR16 (paper section 5.5.2,
// Table 3): optimizing for 16xlarge VMs in addition to 4xlarge.
func MixedVMType(lambda float64) Objective {
	return Objective{Terms: []Term{
		{Res: CPU, Chunk: 16, Weight: 1 - lambda},
		{Res: CPU, Chunk: 64, Weight: lambda},
	}}
}

// MixedResource returns Obj_λ = λ·Mem64 + (1-λ)·FR16 (paper section 5.5.3,
// Table 4): a multi-resource objective over CPU and memory fragments.
func MixedResource(lambda float64) Objective {
	return Objective{Terms: []Term{
		{Res: CPU, Chunk: 16, Weight: 1 - lambda},
		{Res: Mem, Chunk: 64, Weight: lambda},
	}}
}

// ParseObjective understands the textual objective specs shared by the HTTP
// API and the scenario registry: "" or "fr16" (the default FR16 objective),
// "mixed-vm:<λ>" and "mixed-mem:<λ>" with λ in [0, 1].
func ParseObjective(spec string) (Objective, error) {
	if spec == "" || spec == "fr16" {
		return FR16(), nil
	}
	if rest, ok := strings.CutPrefix(spec, "mixed-vm:"); ok {
		if lambda, err := strconv.ParseFloat(rest, 64); err == nil && lambda >= 0 && lambda <= 1 {
			return MixedVMType(lambda), nil
		}
	} else if rest, ok := strings.CutPrefix(spec, "mixed-mem:"); ok {
		if lambda, err := strconv.ParseFloat(rest, 64); err == nil && lambda >= 0 && lambda <= 1 {
			return MixedResource(lambda), nil
		}
	}
	return Objective{}, fmt.Errorf("unknown objective %q", spec)
}

// Value returns the objective for a cluster: Σ w_i · FR_i (lower is better).
func (o Objective) Value(c *cluster.Cluster) float64 {
	total := 0.0
	for _, t := range o.Terms {
		switch t.Res {
		case CPU:
			total += t.Weight * c.FragRate(t.Chunk)
		case Mem:
			total += t.Weight * c.MemFragRate(t.Chunk)
		}
	}
	return total
}

// pmScore returns the weighted, rescaled fragment size of one PM under the
// objective — the S_i of paper Eq. 8. Each term is normalized by
// c = 4 × chunk so a single migration's reward stays within roughly [-1, 1]
// (the paper's constant c = 64 for the 16-core objective).
func (o Objective) pmScore(p *cluster.PM) float64 {
	total := 0.0
	for _, t := range o.Terms {
		c := float64(4 * t.Chunk)
		switch t.Res {
		case CPU:
			total += t.Weight * float64(p.Fragment(t.Chunk)) / c
		case Mem:
			total += t.Weight * float64(p.MemFragment(t.Chunk)) / c
		}
	}
	return total
}
