package sim

import (
	"errors"
	"fmt"
	"sync"

	"vmr2l/internal/cluster"
)

// Migration records one executed rescheduling action. Atomic swaps (the
// future-work extension, see SwapStep) record two consecutive entries with
// Swap set; ApplyPlan re-executes such a pair atomically.
type Migration struct {
	VM       int
	FromPM   int
	FromNuma int
	ToPM     int
	ToNuma   int
	Swap     bool
	// Forced marks an evacuation the plan repairer emitted because the VM
	// sat on a Draining/Down PM: mandatory regardless of objective, and
	// exempt from migration budgets.
	Forced bool
}

// Config parameterizes an environment.
type Config struct {
	// MNL is the migration number limit: the episode length (paper Eq. 5).
	MNL int
	// Obj is the optimization objective; zero value means FR16.
	Obj Objective
	// UseFRGoal switches to the "minimize migrations to reach an FR goal"
	// objective (paper section 5.5.1, Eq. 10-11): each step costs -1 until
	// the 16-core fragment rate reaches FRGoal, which pays +10 and ends the
	// episode early.
	UseFRGoal bool
	FRGoal    float64
}

// DefaultConfig returns an FR16 objective at the given MNL.
func DefaultConfig(mnl int) Config {
	return Config{MNL: mnl, Obj: FR16()}
}

// Env is a deterministic rescheduling episode over a cluster snapshot.
// Not safe for concurrent use; clone per goroutine via Fork.
type Env struct {
	cfg  Config
	init *cluster.Cluster
	c    *cluster.Cluster
	step int
	done bool
	plan []Migration
}

// Environment errors.
var (
	ErrDone    = errors.New("sim: episode finished")
	ErrIllegal = errors.New("sim: illegal action")
)

// New builds an environment over a snapshot of init (which is cloned and
// never mutated).
func New(init *cluster.Cluster, cfg Config) *Env {
	if len(cfg.Obj.Terms) == 0 {
		cfg.Obj = FR16()
	}
	e := &Env{cfg: cfg, init: init.Clone()}
	e.Reset()
	return e
}

// Reset restores the initial mapping and clears the plan. The restore reuses
// the live cluster's storage (cluster.CopyFrom), so per-episode resets do
// not allocate.
func (e *Env) Reset() {
	if e.c == nil {
		e.c = e.init.Clone()
	} else {
		e.c.CopyFrom(e.init)
	}
	e.step = 0
	e.done = e.cfg.MNL <= 0
	e.plan = e.plan[:0]
}

// envPool recycles forked environments (and their cluster storage) across
// the thousands of Fork calls MCTS and risk-seeking sampling make per
// request. Entries are returned via Release.
var envPool = sync.Pool{New: func() any { return new(Env) }}

// Fork returns an independent copy of the environment mid-episode, used by
// search (MCTS) and risk-seeking sampling. The copy comes from an internal
// pool; call Release when done with it to make the fork allocation-free in
// steady state (forgetting Release is safe — the copy is then simply
// garbage-collected).
func (e *Env) Fork() *Env {
	cp := envPool.Get().(*Env)
	cp.cfg = e.cfg
	cp.init = e.init
	if cp.c == nil {
		cp.c = e.c.Clone()
	} else {
		cp.c.CopyFrom(e.c)
	}
	cp.step, cp.done = e.step, e.done
	cp.plan = append(cp.plan[:0], e.plan...)
	return cp
}

// Release returns a forked environment to the pool. The environment must not
// be used afterwards. Safe to call on any Env, but intended for Fork copies;
// plans previously returned by Plan() must be copied out first.
func (e *Env) Release() {
	e.init = nil
	envPool.Put(e)
}

// Cluster exposes the live cluster state (read-only by convention; note
// that even aggregate queries like FragRate lazily warm internal caches, so
// the cluster must stay confined to the environment's goroutine — share
// across goroutines via Fork, not by handing out this pointer).
func (e *Env) Cluster() *cluster.Cluster { return e.c }

// Initial exposes the initial mapping snapshot.
func (e *Env) Initial() *cluster.Cluster { return e.init }

// StepsTaken returns the number of migrations performed this episode.
func (e *Env) StepsTaken() int { return e.step }

// Done reports whether the episode has ended.
func (e *Env) Done() bool { return e.done }

// MNL returns the configured migration number limit.
func (e *Env) MNL() int { return e.cfg.MNL }

// Objective returns the configured objective.
func (e *Env) Objective() Objective { return e.cfg.Obj }

// Plan returns the migrations executed so far.
func (e *Env) Plan() []Migration { return e.plan }

// Value returns the current objective value (lower is better).
func (e *Env) Value() float64 { return e.cfg.Obj.Value(e.c) }

// FragRate returns the 16-core fragment rate of the current state.
func (e *Env) FragRate() float64 { return e.c.FragRate(cluster.DefaultFragCores) }

// LegalVM reports whether the VM is currently migratable: it is placed and
// at least one other PM can host it.
func (e *Env) LegalVM(vm int) bool {
	if vm < 0 || vm >= len(e.c.VMs) || !e.c.VMs[vm].Placed() {
		return false
	}
	for pm := range e.c.PMs {
		if e.c.CanHost(vm, pm) {
			return true
		}
	}
	return false
}

// VMMask returns a bitmask over VMs: true when the VM may be selected by
// stage 1. This is the mask the two-stage framework gives the VM actor.
func (e *Env) VMMask() []bool { return e.VMMaskInto(nil) }

// VMMaskInto fills (and returns) dst with the stage-1 mask, growing it only
// when the VM count changed — the allocation-free variant for inference
// loops.
func (e *Env) VMMaskInto(dst []bool) []bool {
	dst = resizeBools(dst, len(e.c.VMs))
	for vm := range e.c.VMs {
		dst[vm] = e.LegalVM(vm)
	}
	return dst
}

// PMMask returns a bitmask over PMs: true when the PM can legally host vm.
// This is the stage-2 mask applied after the VM actor picks a candidate.
func (e *Env) PMMask(vm int) []bool { return e.PMMaskInto(vm, nil) }

// PMMaskInto fills (and returns) dst with the stage-2 mask for vm.
func (e *Env) PMMaskInto(vm int, dst []bool) []bool {
	dst = resizeBools(dst, len(e.c.PMs))
	if vm < 0 || vm >= len(e.c.VMs) {
		for pm := range dst {
			dst[pm] = false
		}
		return dst
	}
	for pm := range e.c.PMs {
		dst[pm] = e.c.CanHost(vm, pm)
	}
	return dst
}

// resizeBools returns dst resized to n, reallocating only when it is too
// small.
func resizeBools(dst []bool, n int) []bool {
	if cap(dst) < n {
		return make([]bool, n)
	}
	return dst[:n]
}

// goalReached reports whether the FR-goal objective has been met.
func (e *Env) goalReached() bool {
	return e.cfg.UseFRGoal && e.FragRate() <= e.cfg.FRGoal
}

// Step migrates vm to pm and returns the dense reward of Eq. 9 (or the
// shaped Eq. 11 reward in FR-goal mode) plus whether the episode is done.
// Illegal actions return ErrIllegal without mutating state.
func (e *Env) Step(vm, pm int) (reward float64, done bool, err error) {
	if e.done {
		return 0, true, ErrDone
	}
	if vm < 0 || vm >= len(e.c.VMs) || pm < 0 || pm >= len(e.c.PMs) {
		return 0, false, fmt.Errorf("%w: (%d,%d) out of range", ErrIllegal, vm, pm)
	}
	v := &e.c.VMs[vm]
	if !v.Placed() || !e.c.CanHost(vm, pm) {
		return 0, false, fmt.Errorf("%w: vm %d -> pm %d", ErrIllegal, vm, pm)
	}
	src := v.PM
	fromNuma := v.Numa
	beforeSrc := e.cfg.Obj.pmScore(&e.c.PMs[src])
	beforeDst := e.cfg.Obj.pmScore(&e.c.PMs[pm])
	if err := e.c.Migrate(vm, pm, cluster.DefaultFragCores); err != nil {
		return 0, false, fmt.Errorf("%w: %v", ErrIllegal, err)
	}
	afterSrc := e.cfg.Obj.pmScore(&e.c.PMs[src])
	afterDst := e.cfg.Obj.pmScore(&e.c.PMs[pm])
	reward = (beforeSrc - afterSrc) + (beforeDst - afterDst)
	e.plan = append(e.plan, Migration{VM: vm, FromPM: src, FromNuma: fromNuma, ToPM: pm, ToNuma: e.c.VMs[vm].Numa})
	e.step++
	if e.cfg.UseFRGoal {
		if e.goalReached() {
			reward += 10
			e.done = true
		} else {
			reward -= 1
		}
	}
	if e.step >= e.cfg.MNL {
		e.done = true
	}
	return reward, e.done, nil
}

// ApplyPlan deploys a previously computed plan onto a (possibly changed)
// cluster, the way the central server deploys a VMR solution after inference.
// Actions that are no longer feasible — the VM exited, the destination no
// longer fits, or a constraint now fails — are skipped, exactly the paper's
// deployment semantics (footnote 7). Returns applied and skipped counts.
func ApplyPlan(c *cluster.Cluster, plan []Migration) (applied, skipped int) {
	for i := 0; i < len(plan); i++ {
		m := plan[i]
		if m.Swap && i+1 < len(plan) && plan[i+1].Swap {
			n := plan[i+1]
			i++
			if applySwap(c, m, n) {
				applied += 2
			} else {
				skipped += 2
			}
			continue
		}
		if m.VM < 0 || m.VM >= len(c.VMs) || !c.VMs[m.VM].Placed() || c.VMs[m.VM].PM != m.FromPM {
			skipped++
			continue
		}
		if err := c.Migrate(m.VM, m.ToPM, cluster.DefaultFragCores); err != nil {
			skipped++
			continue
		}
		applied++
	}
	return applied, skipped
}

// applySwap atomically re-executes a recorded swap pair on a (possibly
// changed) cluster, rolling back on any failure.
func applySwap(c *cluster.Cluster, m, n Migration) bool {
	for _, e := range []Migration{m, n} {
		if e.VM < 0 || e.VM >= len(c.VMs) || !c.VMs[e.VM].Placed() || c.VMs[e.VM].PM != e.FromPM {
			return false
		}
	}
	aNuma, bNuma := c.VMs[m.VM].Numa, c.VMs[n.VM].Numa
	rollback := func() {
		_ = c.Remove(m.VM)
		_ = c.Remove(n.VM)
		if !c.VMs[m.VM].Placed() {
			if err := c.Place(m.VM, m.FromPM, aNuma); err != nil {
				panic(fmt.Sprintf("sim: swap replay rollback: %v", err))
			}
		}
		if !c.VMs[n.VM].Placed() {
			if err := c.Place(n.VM, n.FromPM, bNuma); err != nil {
				panic(fmt.Sprintf("sim: swap replay rollback: %v", err))
			}
		}
	}
	if err := c.Remove(m.VM); err != nil {
		return false
	}
	if err := c.Remove(n.VM); err != nil {
		rollback()
		return false
	}
	na := c.BestNuma(m.VM, m.ToPM, cluster.DefaultFragCores)
	if na < 0 || c.Place(m.VM, m.ToPM, na) != nil {
		rollback()
		return false
	}
	nb := c.BestNuma(n.VM, n.ToPM, cluster.DefaultFragCores)
	if nb < 0 || c.Place(n.VM, n.ToPM, nb) != nil {
		rollback()
		return false
	}
	return true
}

// PenaltyStep supports the paper's Penalty ablation (section 5.4): when the
// proposed action is illegal, the step is consumed, the state is unchanged,
// and the fixed penalty (e.g. -5) is returned as the reward. Legal actions
// behave exactly like Step.
func (e *Env) PenaltyStep(vm, pm int, penalty float64) (reward float64, done bool, err error) {
	if e.done {
		return 0, true, ErrDone
	}
	r, done, err := e.Step(vm, pm)
	if err == nil {
		return r, done, nil
	}
	if !errors.Is(err, ErrIllegal) {
		return 0, e.done, err
	}
	e.step++
	if e.step >= e.cfg.MNL {
		e.done = true
	}
	return penalty, e.done, nil
}
