package sim

import (
	"math/rand"
	"testing"

	"vmr2l/internal/cluster"
)

func hotTestCluster(seed int64) *cluster.Cluster {
	rng := rand.New(rand.NewSource(seed))
	c := cluster.New(5, cluster.PMSmall)
	for i := 0; i < 18; i++ {
		vt := cluster.StandardTypes[rng.Intn(4)]
		id := c.AddVM(vt)
		for try := 0; try < 5; try++ {
			pm := rng.Intn(len(c.PMs))
			numa := rng.Intn(cluster.NumasPerPM)
			if c.VMs[id].Numas == 2 {
				numa = 0
			}
			if c.Place(id, pm, numa) == nil {
				break
			}
		}
	}
	return c
}

// TestExtractIntoMatchesExtract: re-extraction into a reused buffer must
// produce exactly the rows a fresh extraction does, before and after state
// mutation, and across shape changes.
func TestExtractIntoMatchesExtract(t *testing.T) {
	c := hotTestCluster(1)
	var reused Features
	for round := 0; round < 3; round++ {
		ExtractInto(&reused, c)
		fresh := Extract(c)
		if len(fresh.PM) != len(reused.PM) || len(fresh.VM) != len(reused.VM) {
			t.Fatalf("round %d: shape mismatch", round)
		}
		for i := range fresh.PM {
			for j := range fresh.PM[i] {
				if fresh.PM[i][j] != reused.PM[i][j] {
					t.Fatalf("round %d: PM[%d][%d] %g != %g", round, i, j, reused.PM[i][j], fresh.PM[i][j])
				}
			}
		}
		for v := range fresh.VM {
			for j := range fresh.VM[v] {
				if fresh.VM[v][j] != reused.VM[v][j] {
					t.Fatalf("round %d: VM[%d][%d] %g != %g", round, v, j, reused.VM[v][j], fresh.VM[v][j])
				}
			}
			if fresh.HostPM[v] != reused.HostPM[v] {
				t.Fatalf("round %d: HostPM[%d] %d != %d", round, v, reused.HostPM[v], fresh.HostPM[v])
			}
		}
		// Mutate the state so the next round extracts different features.
		for vm := range c.VMs {
			moved := false
			for pm := range c.PMs {
				if c.CanHost(vm, pm) {
					if c.Migrate(vm, pm, cluster.DefaultFragCores) == nil {
						moved = true
					}
					break
				}
			}
			if moved {
				break
			}
		}
	}
	// Shape change: a smaller cluster reuses the larger buffer.
	small := hotTestCluster(2)
	small = smallTruncate(small)
	ExtractInto(&reused, small)
	fresh := Extract(small)
	if len(reused.PM) != len(fresh.PM) || len(reused.VM) != len(fresh.VM) {
		t.Fatalf("shape change: got %dx%d want %dx%d", len(reused.PM), len(reused.VM), len(fresh.PM), len(fresh.VM))
	}
	for v := range fresh.VM {
		for j := range fresh.VM[v] {
			if fresh.VM[v][j] != reused.VM[v][j] {
				t.Fatalf("shape change: VM[%d][%d] %g != %g", v, j, reused.VM[v][j], fresh.VM[v][j])
			}
		}
	}
}

// smallTruncate builds a genuinely smaller cluster (fewer PMs and VMs).
func smallTruncate(c *cluster.Cluster) *cluster.Cluster {
	s := cluster.New(2, cluster.PMSmall)
	for i := 0; i < 4 && i < len(c.VMs); i++ {
		id := s.AddVM(cluster.VMType{CPU: c.VMs[i].CPU, Mem: c.VMs[i].Mem, Numas: c.VMs[i].Numas})
		numa := 0
		if s.VMs[id].Numas == 1 {
			numa = i % cluster.NumasPerPM
		}
		_ = s.Place(id, i%2, numa)
	}
	return s
}

// TestExtractIntoSteadyStateAllocs pins the zero-allocation guarantee of
// re-extraction.
func TestExtractIntoSteadyStateAllocs(t *testing.T) {
	c := hotTestCluster(3)
	var f Features
	ExtractInto(&f, c)
	if allocs := testing.AllocsPerRun(100, func() { ExtractInto(&f, c) }); allocs > 0 {
		t.Fatalf("steady-state ExtractInto allocates %v times", allocs)
	}
}

// TestForkReleaseRoundTrip: a forked env must be independent, and Release
// must make subsequent forks allocation-light without corrupting state.
func TestForkReleaseRoundTrip(t *testing.T) {
	env := New(hotTestCluster(4), DefaultConfig(6))
	for i := 0; i < 10; i++ {
		f := env.Fork()
		// Mutate the fork; the parent must not change.
		before := env.FragRate()
		for vm := range f.Cluster().VMs {
			done := false
			for pm := range f.Cluster().PMs {
				if f.Cluster().CanHost(vm, pm) {
					if _, _, err := f.Step(vm, pm); err != nil {
						t.Fatal(err)
					}
					done = true
					break
				}
			}
			if done {
				break
			}
		}
		if env.FragRate() != before {
			t.Fatal("fork mutation leaked into parent")
		}
		if f.StepsTaken() != env.StepsTaken()+1 {
			t.Fatalf("fork steps %d, parent %d", f.StepsTaken(), env.StepsTaken())
		}
		f.Release()
	}
	if err := env.Cluster().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestResetRestoresInitialState: after arbitrary steps, Reset must restore
// the exact initial mapping (via CopyFrom, not a fresh clone).
func TestResetRestoresViaCopyFrom(t *testing.T) {
	init := hotTestCluster(5)
	env := New(init, DefaultConfig(4))
	wantFR := env.FragRate()
	for i := 0; i < 3; i++ {
		stepped := false
		for vm := range env.Cluster().VMs {
			for pm := range env.Cluster().PMs {
				if env.Cluster().CanHost(vm, pm) {
					if _, _, err := env.Step(vm, pm); err != nil {
						t.Fatal(err)
					}
					stepped = true
					break
				}
			}
			if stepped {
				break
			}
		}
	}
	env.Reset()
	if env.StepsTaken() != 0 || env.Done() || len(env.Plan()) != 0 {
		t.Fatal("reset did not clear episode state")
	}
	if env.FragRate() != wantFR {
		t.Fatalf("reset FR %v != initial %v", env.FragRate(), wantFR)
	}
	if err := env.Cluster().Validate(); err != nil {
		t.Fatal(err)
	}
	// The restored cluster must equal the initial mapping VM by VM.
	for i := range init.VMs {
		if env.Cluster().VMs[i].PM != env.Initial().VMs[i].PM ||
			env.Cluster().VMs[i].Numa != env.Initial().VMs[i].Numa {
			t.Fatalf("vm %d: reset placement (%d,%d) != initial (%d,%d)", i,
				env.Cluster().VMs[i].PM, env.Cluster().VMs[i].Numa,
				env.Initial().VMs[i].PM, env.Initial().VMs[i].Numa)
		}
	}
	if allocs := testing.AllocsPerRun(100, env.Reset); allocs > 0 {
		t.Fatalf("steady-state Reset allocates %v times", allocs)
	}
}

// TestBestActionMatchesTopActions: the zero-alloc scan must agree with the
// sorted enumeration's head.
func TestBestActionMatchesTopActions(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		c := hotTestCluster(seed)
		obj := FR16()
		best, ok := BestAction(c, obj)
		top := TopActions(c, obj, 1)
		if !ok {
			if len(top) != 0 {
				t.Fatalf("seed %d: BestAction none, TopActions %v", seed, top[0])
			}
			continue
		}
		if len(top) == 0 {
			t.Fatalf("seed %d: BestAction %v, TopActions empty", seed, best)
		}
		if best != top[0] {
			t.Fatalf("seed %d: BestAction %v != TopActions[0] %v", seed, best, top[0])
		}
	}
}
