package sim

import (
	"slices"

	"vmr2l/internal/cluster"
)

// PMScore returns the weighted, rescaled fragment size of one PM under the
// objective — S_i of paper Eq. 8, generalized to multi-term objectives.
func (o Objective) PMScore(p *cluster.PM) float64 { return o.pmScore(p) }

// termFrag computes one objective term's rescaled fragment score for a
// NUMA with the given free CPU and memory.
func termFrag(t Term, freeCPU, freeMem int) float64 {
	c := float64(4 * t.Chunk)
	switch t.Res {
	case CPU:
		return t.Weight * float64(freeCPU%t.Chunk) / c
	case Mem:
		return t.Weight * float64(freeMem%t.Chunk) / c
	}
	return 0
}

// RemovalGain returns the drop in the source PM's score if vm were removed
// (positive is good) — the quantity HA's filtering stage ranks VMs by. The
// second result is false for unplaced VMs.
func RemovalGain(c *cluster.Cluster, o Objective, vm int) (float64, bool) {
	if vm < 0 || vm >= len(c.VMs) || !c.VMs[vm].Placed() {
		return 0, false
	}
	v := &c.VMs[vm]
	p := &c.PMs[v.PM]
	gain := 0.0
	for j := 0; j < cluster.NumasPerPM; j++ {
		if v.Numas == 1 && v.Numa != j {
			continue
		}
		n := &p.Numas[j]
		for _, t := range o.Terms {
			before := termFrag(t, n.FreeCPU(), n.FreeMem())
			after := termFrag(t, n.FreeCPU()+v.CPUPerNuma(), n.FreeMem()+v.MemPerNuma())
			gain += before - after
		}
	}
	return gain, true
}

// InsertGain returns the drop in PM pm's score if vm were added to it, using
// the same destination-NUMA rule as Cluster.Migrate. The second result is
// false when the VM cannot be hosted (capacity, affinity, or same PM).
func InsertGain(c *cluster.Cluster, o Objective, vm, pm int) (float64, bool) {
	if !c.CanHost(vm, pm) {
		return 0, false
	}
	v := &c.VMs[vm]
	numa := c.BestNuma(vm, pm, cluster.DefaultFragCores)
	if numa < 0 {
		return 0, false
	}
	p := &c.PMs[pm]
	gain := 0.0
	for j := 0; j < cluster.NumasPerPM; j++ {
		if v.Numas == 1 && numa != j {
			continue
		}
		n := &p.Numas[j]
		for _, t := range o.Terms {
			before := termFrag(t, n.FreeCPU(), n.FreeMem())
			after := termFrag(t, n.FreeCPU()-v.CPUPerNuma(), n.FreeMem()-v.MemPerNuma())
			gain += before - after
		}
	}
	return gain, true
}

// MoveGain returns the Eq. 9 reward of migrating vm to pm without mutating
// the cluster: RemovalGain on the source plus InsertGain on the destination.
// ok is false when the move is illegal.
func MoveGain(c *cluster.Cluster, o Objective, vm, pm int) (float64, bool) {
	rg, ok := RemovalGain(c, o, vm)
	if !ok {
		return 0, false
	}
	ig, ok := InsertGain(c, o, vm, pm)
	if !ok {
		return 0, false
	}
	return rg + ig, true
}

// BestAction returns the legal migration with the highest immediate gain
// (ties: lowest VM, then lowest PM) without allocating — the zero-alloc
// variant of TopActions(c, o, 1) used by search rollouts. ok is false when
// no legal migration exists.
func BestAction(c *cluster.Cluster, o Objective) (best Action, ok bool) {
	for vm := range c.VMs {
		rg, rok := RemovalGain(c, o, vm)
		if !rok {
			continue
		}
		for pm := range c.PMs {
			ig, iok := InsertGain(c, o, vm, pm)
			if !iok {
				continue
			}
			gain := rg + ig
			if !ok || gain > best.Gain {
				best, ok = Action{VM: vm, PM: pm, Gain: gain}, true
			}
		}
	}
	return best, ok
}

// Action is a candidate (VM, PM) migration with its immediate gain.
type Action struct {
	VM   int
	PM   int
	Gain float64
}

// TopActions enumerates legal migrations sorted by descending immediate
// gain, keeping at most k (k <= 0 means all). This is the candidate pruning
// shared by the heuristic, search, and exact solvers.
func TopActions(c *cluster.Cluster, o Objective, k int) []Action {
	return TopActionsInto(nil, c, o, k, nil)
}

// TopActionsInto is TopActions with a reusable result buffer (dst, may be
// nil) and an optional candidate filter. For bounded k the top-k set is
// maintained by insertion during the scan — O(M·N·k) and allocation-free
// once dst has capacity — instead of sorting the full candidate list, which
// is what search solvers hammer at every tree node.
func TopActionsInto(dst []Action, c *cluster.Cluster, o Objective, k int, keep func(Action) bool) []Action {
	acts := dst[:0]
	for vm := range c.VMs {
		rg, ok := RemovalGain(c, o, vm)
		if !ok {
			continue
		}
		for pm := range c.PMs {
			ig, ok := InsertGain(c, o, vm, pm)
			if !ok {
				continue
			}
			a := Action{VM: vm, PM: pm, Gain: rg + ig}
			if keep != nil && !keep(a) {
				continue
			}
			if k > 0 {
				acts = insertTopK(acts, a, k)
			} else {
				acts = append(acts, a)
			}
		}
	}
	if k <= 0 {
		sortActions(acts)
	}
	return acts
}

// actionRank orders by descending gain with (VM, PM) tie-breaks so solver
// behaviour is deterministic across runs.
func actionRank(a, b Action) int {
	switch {
	case a.Gain > b.Gain:
		return -1
	case a.Gain < b.Gain:
		return 1
	case a.VM != b.VM:
		return a.VM - b.VM
	default:
		return a.PM - b.PM
	}
}

// insertTopK inserts a into the rank-sorted slice acts, keeping at most k
// entries. The enumeration order (ascending VM, then PM) already matches the
// tie-break, so equal-gain candidates keep their deterministic order.
func insertTopK(acts []Action, a Action, k int) []Action {
	pos := len(acts)
	for pos > 0 && actionRank(a, acts[pos-1]) < 0 {
		pos--
	}
	if len(acts) < k {
		acts = append(acts, Action{})
	} else if pos >= len(acts) {
		return acts
	}
	copy(acts[pos+1:], acts[pos:len(acts)-1])
	acts[pos] = a
	return acts
}

// sortActions sorts the full candidate list (reflection-free).
func sortActions(acts []Action) {
	slices.SortFunc(acts, actionRank)
}
