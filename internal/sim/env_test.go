package sim

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vmr2l/internal/cluster"
	"vmr2l/internal/trace"
)

func tinyMapping(seed int64) *cluster.Cluster {
	return trace.MustProfile("tiny").GenerateMapping(rand.New(rand.NewSource(seed)))
}

// greedyStep picks the legal (vm, pm) with the best immediate reward.
func greedyStep(e *Env) (int, int, bool) {
	bestVM, bestPM, best := -1, -1, math.Inf(-1)
	c := e.Cluster()
	for vm := range c.VMs {
		if !c.VMs[vm].Placed() {
			continue
		}
		for pm := range c.PMs {
			if !c.CanHost(vm, pm) {
				continue
			}
			f := e.Fork()
			r, _, err := f.Step(vm, pm)
			if err != nil {
				continue
			}
			if r > best {
				bestVM, bestPM, best = vm, pm, r
			}
		}
	}
	return bestVM, bestPM, bestVM >= 0
}

func TestEpisodeLengthAndDone(t *testing.T) {
	c := tinyMapping(1)
	e := New(c, DefaultConfig(3))
	steps := 0
	for !e.Done() {
		vm, pm, ok := greedyStep(e)
		if !ok {
			t.Skip("no legal action on this mapping")
		}
		if _, _, err := e.Step(vm, pm); err != nil {
			t.Fatal(err)
		}
		steps++
		if steps > 3 {
			t.Fatal("episode exceeded MNL")
		}
	}
	if steps != 3 || e.StepsTaken() != 3 {
		t.Fatalf("steps = %d, want 3", steps)
	}
	if _, _, err := e.Step(0, 0); !errors.Is(err, ErrDone) {
		t.Errorf("step after done: %v", err)
	}
	if len(e.Plan()) != 3 {
		t.Errorf("plan length = %d, want 3", len(e.Plan()))
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	c := tinyMapping(2)
	e := New(c, DefaultConfig(2))
	fr0 := e.FragRate()
	vm, pm, ok := greedyStep(e)
	if !ok {
		t.Skip("no legal action")
	}
	if _, _, err := e.Step(vm, pm); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	if e.FragRate() != fr0 || e.StepsTaken() != 0 || e.Done() || len(e.Plan()) != 0 {
		t.Error("Reset did not restore initial state")
	}
	// Initial snapshot never mutated by stepping.
	if e.Initial().FragRate(16) != fr0 {
		t.Error("initial snapshot mutated")
	}
}

func TestIllegalActionsDoNotMutate(t *testing.T) {
	c := tinyMapping(3)
	e := New(c, DefaultConfig(5))
	fr := e.FragRate()
	if _, _, err := e.Step(-1, 0); !errors.Is(err, ErrIllegal) {
		t.Errorf("negative vm: %v", err)
	}
	if _, _, err := e.Step(0, 999); !errors.Is(err, ErrIllegal) {
		t.Errorf("pm out of range: %v", err)
	}
	// Move to own PM is illegal.
	src := e.Cluster().VMs[0].PM
	if _, _, err := e.Step(0, src); !errors.Is(err, ErrIllegal) {
		t.Errorf("self move: %v", err)
	}
	if e.FragRate() != fr || e.StepsTaken() != 0 {
		t.Error("illegal action mutated state")
	}
}

// TestRewardTelescoping: the undiscounted sum of dense rewards equals the
// total drop in (rescaled) fragment size between initial and final state —
// the property that makes Eq. 9 a dense decomposition of the FR objective.
func TestRewardTelescoping(t *testing.T) {
	f := func(seed int64) bool {
		c := tinyMapping(seed)
		e := New(c, DefaultConfig(6))
		total := 0.0
		rng := rand.New(rand.NewSource(seed + 99))
		for !e.Done() {
			// Random legal action.
			var acts [][2]int
			cl := e.Cluster()
			for vm := range cl.VMs {
				for pm := range cl.PMs {
					if cl.VMs[vm].Placed() && cl.CanHost(vm, pm) {
						acts = append(acts, [2]int{vm, pm})
					}
				}
			}
			if len(acts) == 0 {
				break
			}
			a := acts[rng.Intn(len(acts))]
			r, _, err := e.Step(a[0], a[1])
			if err != nil {
				return false
			}
			total += r
		}
		before := float64(e.Initial().Fragment(16)) / 64.0
		after := float64(e.Cluster().Fragment(16)) / 64.0
		return math.Abs(total-(before-after)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskSoundness(t *testing.T) {
	f := func(seed int64) bool {
		c := tinyMapping(seed)
		e := New(c, DefaultConfig(4))
		vmMask := e.VMMask()
		for vm, ok := range vmMask {
			pmMask := e.PMMask(vm)
			anyPM := false
			for pm, legal := range pmMask {
				if !legal {
					continue
				}
				anyPM = true
				f := e.Fork()
				if _, _, err := f.Step(vm, pm); err != nil {
					t.Logf("masked-legal action failed: vm %d pm %d: %v", vm, pm, err)
					return false
				}
			}
			if ok && !anyPM {
				t.Logf("vm %d legal but no legal pm", vm)
				return false
			}
			if !ok && anyPM {
				t.Logf("vm %d illegal but pm mask non-empty", vm)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestFRGoalMode(t *testing.T) {
	c := tinyMapping(5)
	base := New(c, DefaultConfig(10))
	// Pick a reachable goal: run greedy for 10 steps and note the FR.
	for !base.Done() {
		vm, pm, ok := greedyStep(base)
		if !ok {
			break
		}
		if _, _, err := base.Step(vm, pm); err != nil {
			t.Fatal(err)
		}
	}
	goal := base.FragRate() + 0.02
	e := New(c, Config{MNL: 10, UseFRGoal: true, FRGoal: goal})
	var lastReward float64
	for !e.Done() {
		vm, pm, ok := greedyStep(e)
		if !ok {
			break
		}
		r, _, err := e.Step(vm, pm)
		if err != nil {
			t.Fatal(err)
		}
		lastReward = r
	}
	if e.FragRate() <= goal {
		if lastReward < 9 {
			t.Errorf("goal reached but last reward %v missing +10 bonus", lastReward)
		}
		if e.StepsTaken() == 10 && !e.Done() {
			t.Error("episode should end at goal")
		}
	}
}

func TestMixedObjectiveValue(t *testing.T) {
	c := tinyMapping(6)
	fr16 := FR16().Value(c)
	if got := c.FragRate(16); math.Abs(fr16-got) > 1e-12 {
		t.Fatalf("FR16 objective %v != FragRate %v", fr16, got)
	}
	for _, lambda := range []float64{0, 0.4, 1} {
		mv := MixedVMType(lambda).Value(c)
		want := lambda*c.FragRate(64) + (1-lambda)*c.FragRate(16)
		if math.Abs(mv-want) > 1e-12 {
			t.Errorf("MixedVMType(%v) = %v, want %v", lambda, mv, want)
		}
		mr := MixedResource(lambda).Value(c)
		want = lambda*c.MemFragRate(64) + (1-lambda)*c.FragRate(16)
		if math.Abs(mr-want) > 1e-12 {
			t.Errorf("MixedResource(%v) = %v, want %v", lambda, mr, want)
		}
	}
}

func TestApplyPlanSkipsInfeasible(t *testing.T) {
	c := tinyMapping(7)
	e := New(c, DefaultConfig(4))
	for !e.Done() {
		vm, pm, ok := greedyStep(e)
		if !ok {
			break
		}
		if _, _, err := e.Step(vm, pm); err != nil {
			t.Fatal(err)
		}
	}
	plan := e.Plan()
	if len(plan) == 0 {
		t.Skip("no plan")
	}
	// Apply to a fresh copy: all should apply.
	fresh := c.Clone()
	applied, skipped := ApplyPlan(fresh, plan)
	if skipped != 0 || applied != len(plan) {
		t.Fatalf("fresh apply: %d applied, %d skipped", applied, skipped)
	}
	if fresh.FragRate(16) != e.FragRate() {
		t.Errorf("replayed FR %v != env FR %v", fresh.FragRate(16), e.FragRate())
	}
	// Remove the first plan's VM: that migration must be skipped.
	changed := c.Clone()
	if err := changed.Remove(plan[0].VM); err != nil {
		t.Fatal(err)
	}
	_, skipped = ApplyPlan(changed, plan)
	if skipped == 0 {
		t.Error("expected at least one skipped migration after VM exit")
	}
	if err := changed.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExtractFeatureShapes(t *testing.T) {
	c := tinyMapping(8)
	f := Extract(c)
	if len(f.PM) != len(c.PMs) || len(f.VM) != len(c.VMs) {
		t.Fatalf("feature rows mismatch")
	}
	for _, row := range f.PM {
		if len(row) != PMFeatDim {
			t.Fatalf("pm feature dim = %d, want %d", len(row), PMFeatDim)
		}
		for _, x := range row {
			if x < 0 || x > 1 || math.IsNaN(x) {
				t.Fatalf("pm feature out of [0,1]: %v", x)
			}
		}
	}
	for v, row := range f.VM {
		if len(row) != VMFeatDim {
			t.Fatalf("vm feature dim = %d, want %d", len(row), VMFeatDim)
		}
		for _, x := range row {
			if x < 0 || x > 1 || math.IsNaN(x) {
				t.Fatalf("vm feature out of [0,1]: %v", x)
			}
		}
		if f.HostPM[v] != c.VMs[v].PM {
			t.Fatalf("hostPM mismatch for vm %d", v)
		}
	}
}

func TestExtractSingleNumaPadding(t *testing.T) {
	// A lone single-NUMA VM: NUMA-1 request features must be zero-padded.
	cl := cluster.New(2, cluster.PMType{CPUPerNuma: 32, MemPerNuma: 64})
	id := cl.AddVM(cluster.VMType{CPU: 4, Mem: 8, Numas: 1})
	if err := cl.Place(id, 0, 0); err != nil {
		t.Fatal(err)
	}
	id2 := cl.AddVM(cluster.VMType{CPU: 8, Mem: 16, Numas: 2})
	if err := cl.Place(id2, 1, 0); err != nil {
		t.Fatal(err)
	}
	f := Extract(cl)
	// After min-max normalization the single-NUMA VM must have the minimum
	// (zero) in the NUMA-1 cpu/mem columns, the double-NUMA one the max.
	if f.VM[id][2] != 0 || f.VM[id][3] != 0 {
		t.Errorf("single-numa padding not minimal: %v", f.VM[id][:4])
	}
	if f.VM[id2][2] != 1 || f.VM[id2][3] != 1 {
		t.Errorf("double-numa numa1 request not maximal: %v", f.VM[id2][:4])
	}
}

func TestForkIsolation(t *testing.T) {
	c := tinyMapping(9)
	e := New(c, DefaultConfig(5))
	f := e.Fork()
	vm, pm, ok := greedyStep(f)
	if !ok {
		t.Skip("no legal action")
	}
	if _, _, err := f.Step(vm, pm); err != nil {
		t.Fatal(err)
	}
	if e.StepsTaken() != 0 || len(e.Plan()) != 0 {
		t.Error("fork mutation leaked to parent")
	}
	if e.FragRate() == f.FragRate() && e.Cluster().VMs[vm].PM == f.Cluster().VMs[vm].PM {
		t.Error("fork step had no effect")
	}
}

func TestPenaltyStepConsumesStepOnIllegal(t *testing.T) {
	c := tinyMapping(10)
	e := New(c, DefaultConfig(2))
	fr := e.FragRate()
	// Illegal: move VM 0 to its own PM.
	src := e.Cluster().VMs[0].PM
	r, done, err := e.PenaltyStep(0, src, -5)
	if err != nil {
		t.Fatal(err)
	}
	if r != -5 {
		t.Fatalf("penalty reward = %v, want -5", r)
	}
	if done {
		t.Fatal("episode should continue after one of two steps")
	}
	if e.StepsTaken() != 1 {
		t.Fatalf("steps = %d, want 1 (illegal action consumes the step)", e.StepsTaken())
	}
	if e.FragRate() != fr {
		t.Fatal("illegal penalty step mutated cluster state")
	}
	// Second illegal action ends the episode.
	if _, done, err = e.PenaltyStep(0, src, -5); err != nil || !done {
		t.Fatalf("second penalty step: done=%v err=%v", done, err)
	}
	if _, _, err := e.PenaltyStep(0, src, -5); !errors.Is(err, ErrDone) {
		t.Fatalf("step after done: %v", err)
	}
}

func TestPenaltyStepLegalActionBehavesLikeStep(t *testing.T) {
	c := tinyMapping(11)
	e1 := New(c, DefaultConfig(3))
	e2 := New(c, DefaultConfig(3))
	vm, pm, ok := greedyStep(e1)
	if !ok {
		t.Skip("no legal action")
	}
	r1, _, err := e1.Step(vm, pm)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := e2.PenaltyStep(vm, pm, -5)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("legal PenaltyStep reward %v != Step reward %v", r2, r1)
	}
}
