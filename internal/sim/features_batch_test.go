package sim

import (
	"math/rand"
	"testing"

	"vmr2l/internal/cluster"
	"vmr2l/internal/trace"
)

func batchClusters(t *testing.T, n int) []*cluster.Cluster {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	p := trace.MustProfile("tiny")
	cs := make([]*cluster.Cluster, n)
	for i := range cs {
		cs[i] = p.GenerateMapping(rng)
		// Ragged shapes: drop a few VMs from later clusters.
		for j := 0; j < i && len(cs[i].VMs) > 1; j++ {
			_ = cs[i].Remove(len(cs[i].VMs) - 1 - j)
		}
	}
	return cs
}

// TestFeatureBatchMatchesExtractInto pins the batched extraction contract:
// every environment's rows in the stacked buffers are bit-identical to a
// standalone ExtractInto (normalization spans only that environment).
func TestFeatureBatchMatchesExtractInto(t *testing.T) {
	cs := batchClusters(t, 4)
	var fb FeatureBatch
	fb.Extract(cs)
	if fb.Len() != len(cs) {
		t.Fatalf("batch len %d != %d", fb.Len(), len(cs))
	}
	for i, c := range cs {
		var ref Features
		ExtractInto(&ref, c)
		got := &fb.Envs[i]
		if len(got.PM) != len(ref.PM) || len(got.VM) != len(ref.VM) {
			t.Fatalf("env %d: shape %d/%d vs %d/%d", i, len(got.PM), len(got.VM), len(ref.PM), len(ref.VM))
		}
		for r := range ref.PM {
			for j := range ref.PM[r] {
				if ref.PM[r][j] != got.PM[r][j] {
					t.Fatalf("env %d PM[%d][%d]: %v != %v", i, r, j, got.PM[r][j], ref.PM[r][j])
				}
			}
		}
		for r := range ref.VM {
			for j := range ref.VM[r] {
				if ref.VM[r][j] != got.VM[r][j] {
					t.Fatalf("env %d VM[%d][%d]: %v != %v", i, r, j, got.VM[r][j], ref.VM[r][j])
				}
			}
		}
		for v := range ref.HostPM {
			if ref.HostPM[v] != got.HostPM[v] {
				t.Fatalf("env %d HostPM[%d]: %d != %d", i, v, got.HostPM[v], ref.HostPM[v])
			}
		}
		// The flat views must alias the shared stacked buffers at the
		// recorded offsets.
		if &got.FlatPM()[0] != &fb.FlatPM()[fb.PMOff[i]*PMFeatDim] {
			t.Fatalf("env %d: FlatPM does not alias the stacked buffer", i)
		}
		if &got.FlatVM()[0] != &fb.FlatVM()[fb.VMOff[i]*VMFeatDim] {
			t.Fatalf("env %d: FlatVM does not alias the stacked buffer", i)
		}
	}
}

// TestFeatureBatchSteadyStateAllocs verifies batch re-extraction at a stable
// shape allocates nothing.
func TestFeatureBatchSteadyStateAllocs(t *testing.T) {
	cs := batchClusters(t, 3)
	var fb FeatureBatch
	fb.Extract(cs)
	fb.Extract(cs)
	if allocs := testing.AllocsPerRun(50, func() { fb.Extract(cs) }); allocs > 0 {
		t.Fatalf("steady-state batch extraction allocates %v times", allocs)
	}
}

// TestFeaturesCloneDetaches verifies Clone copies out of a batch slot.
func TestFeaturesCloneDetaches(t *testing.T) {
	cs := batchClusters(t, 2)
	var fb FeatureBatch
	fb.Extract(cs)
	cp := fb.Envs[1].Clone()
	want := append([]float64(nil), cp.FlatVM()...)
	for i := range fb.Envs[1].FlatVM() {
		fb.Envs[1].FlatVM()[i] = -999
	}
	for i, v := range cp.FlatVM() {
		if v != want[i] {
			t.Fatalf("clone mutated through batch buffer at %d", i)
		}
	}
	if len(cp.PM) != len(fb.Envs[1].PM) || len(cp.VM) != len(fb.Envs[1].VM) {
		t.Fatal("clone shape mismatch")
	}
}
