package sim

import "vmr2l/internal/cluster"

// Feature dimensions of the paper's state representation (section 3.1):
// four features for each of the two NUMAs of a PM, and 14 VM features
// (per-NUMA requested cpu/mem, per-NUMA fragment deltas, plus the source
// PM's eight features).
const (
	PMFeatDim = 4 * cluster.NumasPerPM
	VMFeatDim = 4 + 2 + PMFeatDim
)

// Features is the neural-network input for one state: one row per PM and one
// row per VM, plus the tree structure (which VMs live on which PM) consumed
// by the sparse local-attention stage.
type Features struct {
	PM [][]float64 // len(PMs) x PMFeatDim, min-max normalized
	VM [][]float64 // len(VMs) x VMFeatDim, min-max normalized
	// HostPM[v] is the PM currently hosting VM v, or -1.
	HostPM []int
}

// pmRaw fills an 8-feature row for one PM: per NUMA, free CPU, free memory,
// 16-core fragment, and fragment share of free CPU.
func pmRaw(p *cluster.PM, row []float64) {
	for j := 0; j < cluster.NumasPerPM; j++ {
		n := &p.Numas[j]
		free := n.FreeCPU()
		frag := n.Fragment(cluster.DefaultFragCores)
		share := 0.0
		if free > 0 {
			share = float64(frag) / float64(free)
		}
		row[4*j+0] = float64(free)
		row[4*j+1] = float64(n.FreeMem())
		row[4*j+2] = float64(frag)
		row[4*j+3] = share
	}
}

// Extract builds the state features for the current cluster of the
// environment. Each feature dimension is min-max normalized across machines
// (paper section 3.1); constant dimensions become zero.
func Extract(c *cluster.Cluster) *Features {
	f := &Features{
		PM:     make([][]float64, len(c.PMs)),
		VM:     make([][]float64, len(c.VMs)),
		HostPM: make([]int, len(c.VMs)),
	}
	for i := range c.PMs {
		f.PM[i] = make([]float64, PMFeatDim)
		pmRaw(&c.PMs[i], f.PM[i])
	}
	for v := range c.VMs {
		vm := &c.VMs[v]
		row := make([]float64, VMFeatDim)
		f.VM[v] = row
		f.HostPM[v] = vm.PM
		// Requested cpu/mem per NUMA; zeros pad the unused NUMA slot of
		// single-NUMA VMs (paper section 3.1).
		row[0] = float64(vm.CPUPerNuma())
		row[1] = float64(vm.MemPerNuma())
		if vm.Numas == 2 {
			row[2] = float64(vm.CPUPerNuma())
			row[3] = float64(vm.MemPerNuma())
		}
		if vm.Placed() {
			p := &c.PMs[vm.PM]
			// Fragment delta on each source NUMA if this VM were removed.
			for j := 0; j < cluster.NumasPerPM; j++ {
				n := p.Numas[j]
				occupies := vm.Numas == 2 || vm.Numa == j
				if !occupies {
					continue
				}
				before := n.Fragment(cluster.DefaultFragCores)
				after := (n.FreeCPU() + vm.CPUPerNuma()) % cluster.DefaultFragCores
				row[4+j] = float64(after - before)
			}
			pmRaw(p, row[6:])
		}
	}
	normalize(f.PM)
	normalize(f.VM)
	return f
}

// normalize applies per-column min-max scaling in place.
func normalize(rows [][]float64) {
	if len(rows) == 0 {
		return
	}
	dim := len(rows[0])
	for col := 0; col < dim; col++ {
		lo, hi := rows[0][col], rows[0][col]
		for _, r := range rows {
			if r[col] < lo {
				lo = r[col]
			}
			if r[col] > hi {
				hi = r[col]
			}
		}
		span := hi - lo
		for _, r := range rows {
			if span == 0 {
				r[col] = 0
			} else {
				r[col] = (r[col] - lo) / span
			}
		}
	}
}
