package sim

import "vmr2l/internal/cluster"

// Feature dimensions of the paper's state representation (section 3.1):
// four features for each of the two NUMAs of a PM, and 14 VM features
// (per-NUMA requested cpu/mem, per-NUMA fragment deltas, plus the source
// PM's eight features).
const (
	PMFeatDim = 4 * cluster.NumasPerPM
	VMFeatDim = 4 + 2 + PMFeatDim
)

// Features is the neural-network input for one state: one row per PM and one
// row per VM, plus the tree structure (which VMs live on which PM) consumed
// by the sparse local-attention stage. All rows are views into one flat
// backing buffer, so re-extraction via ExtractInto is allocation-free once
// the buffer has grown to the cluster's shape.
type Features struct {
	PM [][]float64 // len(PMs) x PMFeatDim, min-max normalized
	VM [][]float64 // len(VMs) x VMFeatDim, min-max normalized
	// HostPM[v] is the PM currently hosting VM v, or -1.
	HostPM []int

	// buf backs every PM row followed by every VM row, row-major.
	buf []float64
}

// FlatPM returns the PM rows as one row-major slice (len(PM)*PMFeatDim).
func (f *Features) FlatPM() []float64 { return f.buf[:len(f.PM)*PMFeatDim] }

// FlatVM returns the VM rows as one row-major slice (len(VM)*VMFeatDim).
func (f *Features) FlatVM() []float64 {
	off := len(f.PM) * PMFeatDim
	return f.buf[off : off+len(f.VM)*VMFeatDim]
}

// reshape sizes the backing buffer and row headers for nPM PMs and nVM VMs,
// reusing existing storage when the shape is unchanged.
func (f *Features) reshape(nPM, nVM int) {
	need := nPM*PMFeatDim + nVM*VMFeatDim
	if cap(f.buf) < need {
		f.buf = make([]float64, need)
	} else {
		f.buf = f.buf[:need]
		for i := range f.buf {
			f.buf[i] = 0
		}
	}
	if len(f.PM) == nPM && len(f.VM) == nVM && len(f.HostPM) == nVM &&
		(nPM == 0 || &f.PM[0][0] == &f.buf[0]) {
		return // headers already point into the current buffer
	}
	if cap(f.PM) < nPM {
		f.PM = make([][]float64, nPM)
	} else {
		f.PM = f.PM[:nPM]
	}
	if cap(f.VM) < nVM {
		f.VM = make([][]float64, nVM)
	} else {
		f.VM = f.VM[:nVM]
	}
	if cap(f.HostPM) < nVM {
		f.HostPM = make([]int, nVM)
	} else {
		f.HostPM = f.HostPM[:nVM]
	}
	for i := 0; i < nPM; i++ {
		f.PM[i] = f.buf[i*PMFeatDim : (i+1)*PMFeatDim : (i+1)*PMFeatDim]
	}
	off := nPM * PMFeatDim
	for v := 0; v < nVM; v++ {
		f.VM[v] = f.buf[off+v*VMFeatDim : off+(v+1)*VMFeatDim : off+(v+1)*VMFeatDim]
	}
}

// pmRaw fills an 8-feature row for one PM: per NUMA, free CPU, free memory,
// 16-core fragment, and fragment share of free CPU.
func pmRaw(p *cluster.PM, row []float64) {
	for j := 0; j < cluster.NumasPerPM; j++ {
		n := &p.Numas[j]
		free := n.FreeCPU()
		frag := n.Fragment(cluster.DefaultFragCores)
		share := 0.0
		if free > 0 {
			share = float64(frag) / float64(free)
		}
		row[4*j+0] = float64(free)
		row[4*j+1] = float64(n.FreeMem())
		row[4*j+2] = float64(frag)
		row[4*j+3] = share
	}
}

// Extract builds the state features for the current cluster of the
// environment. Each feature dimension is min-max normalized across machines
// (paper section 3.1); constant dimensions become zero.
func Extract(c *cluster.Cluster) *Features {
	f := &Features{}
	ExtractInto(f, c)
	return f
}

// ExtractInto recomputes the features for c into f, reusing f's buffers.
// Steady-state re-extraction (same cluster shape) performs zero allocations;
// this is the per-step path of policy rollouts.
func ExtractInto(f *Features, c *cluster.Cluster) {
	f.reshape(len(c.PMs), len(c.VMs))
	for i := range c.PMs {
		pmRaw(&c.PMs[i], f.PM[i])
	}
	for v := range c.VMs {
		vm := &c.VMs[v]
		row := f.VM[v] // zeroed by reshape
		f.HostPM[v] = vm.PM
		// Requested cpu/mem per NUMA; zeros pad the unused NUMA slot of
		// single-NUMA VMs (paper section 3.1).
		row[0] = float64(vm.CPUPerNuma())
		row[1] = float64(vm.MemPerNuma())
		if vm.Numas == 2 {
			row[2] = float64(vm.CPUPerNuma())
			row[3] = float64(vm.MemPerNuma())
		}
		if vm.Placed() {
			p := &c.PMs[vm.PM]
			// Fragment delta on each source NUMA if this VM were removed.
			for j := 0; j < cluster.NumasPerPM; j++ {
				n := p.Numas[j]
				occupies := vm.Numas == 2 || vm.Numa == j
				if !occupies {
					continue
				}
				before := n.Fragment(cluster.DefaultFragCores)
				after := (n.FreeCPU() + vm.CPUPerNuma()) % cluster.DefaultFragCores
				row[4+j] = float64(after - before)
			}
			pmRaw(p, row[6:])
		}
	}
	normalize(f.PM)
	normalize(f.VM)
}

// normalize applies per-column min-max scaling in place.
func normalize(rows [][]float64) {
	if len(rows) == 0 {
		return
	}
	dim := len(rows[0])
	for col := 0; col < dim; col++ {
		lo, hi := rows[0][col], rows[0][col]
		for _, r := range rows {
			if r[col] < lo {
				lo = r[col]
			}
			if r[col] > hi {
				hi = r[col]
			}
		}
		span := hi - lo
		for _, r := range rows {
			if span == 0 {
				r[col] = 0
			} else {
				r[col] = (r[col] - lo) / span
			}
		}
	}
}
