package sim

import "vmr2l/internal/cluster"

// Feature dimensions of the paper's state representation (section 3.1):
// four features for each of the two NUMAs of a PM, and 14 VM features
// (per-NUMA requested cpu/mem, per-NUMA fragment deltas, plus the source
// PM's eight features).
const (
	PMFeatDim = 4 * cluster.NumasPerPM
	VMFeatDim = 4 + 2 + PMFeatDim
)

// Features is the neural-network input for one state: one row per PM and one
// row per VM, plus the tree structure (which VMs live on which PM) consumed
// by the sparse local-attention stage. All rows are views into one flat
// backing buffer, so re-extraction via ExtractInto is allocation-free once
// the buffer has grown to the cluster's shape.
type Features struct {
	PM [][]float64 // len(PMs) x PMFeatDim, min-max normalized
	VM [][]float64 // len(VMs) x VMFeatDim, min-max normalized
	// HostPM[v] is the PM currently hosting VM v, or -1.
	HostPM []int

	// buf backs every PM row followed by every VM row when the Features owns
	// its storage; batch-extracted Features instead alias slots of a
	// FeatureBatch's stacked buffers and leave buf nil.
	buf            []float64
	pmFlat, vmFlat []float64

	// Incremental-extraction state (features_incr.go): raw pre-normalization
	// rows, the per-column min/max the normalized rows were computed with,
	// and scratch for re-verifying them. rawValid gates the UpdateInto fast
	// path; any full re-extraction through fill invalidates it.
	rawPM, rawVM   []float64
	pmLo, pmHi     []float64
	vmLo, vmHi     []float64
	scanLo, scanHi []float64
	rawValid       bool
	vmMark         []uint64
	markEpoch      uint64
	vmDirty        []int
}

// FlatPM returns the PM rows as one row-major slice (len(PM)*PMFeatDim).
func (f *Features) FlatPM() []float64 { return f.pmFlat }

// FlatVM returns the VM rows as one row-major slice (len(VM)*VMFeatDim).
func (f *Features) FlatVM() []float64 { return f.vmFlat }

// Clone returns a deep copy with its own storage, detached from any batch
// buffer — the snapshot ActBatch stores for PPO's later re-evaluation.
func (f *Features) Clone() *Features {
	cp := &Features{}
	cp.reshape(len(f.PM), len(f.VM))
	copy(cp.pmFlat, f.pmFlat)
	copy(cp.vmFlat, f.vmFlat)
	copy(cp.HostPM, f.HostPM)
	return cp
}

// reshape sizes the backing buffer and row headers for nPM PMs and nVM VMs,
// reusing existing storage when the shape is unchanged.
func (f *Features) reshape(nPM, nVM int) {
	need := nPM*PMFeatDim + nVM*VMFeatDim
	if cap(f.buf) < need {
		f.buf = make([]float64, need)
	} else {
		f.buf = f.buf[:need]
		for i := range f.buf {
			f.buf[i] = 0
		}
	}
	f.reshapeInto(nPM, nVM, f.buf[:nPM*PMFeatDim], f.buf[nPM*PMFeatDim:need])
}

// reshapeInto points the row headers at the provided (already zeroed) PM and
// VM backing slices — the aliasing mode FeatureBatch uses to stack several
// environments' rows contiguously.
func (f *Features) reshapeInto(nPM, nVM int, pmFlat, vmFlat []float64) {
	f.pmFlat, f.vmFlat = pmFlat, vmFlat
	if len(f.PM) == nPM && len(f.VM) == nVM && len(f.HostPM) == nVM &&
		(nPM == 0 || &f.PM[0][0] == &pmFlat[0]) &&
		(nVM == 0 || &f.VM[0][0] == &vmFlat[0]) {
		return // headers already point into the current buffers
	}
	if cap(f.PM) < nPM {
		f.PM = make([][]float64, nPM)
	} else {
		f.PM = f.PM[:nPM]
	}
	if cap(f.VM) < nVM {
		f.VM = make([][]float64, nVM)
	} else {
		f.VM = f.VM[:nVM]
	}
	if cap(f.HostPM) < nVM {
		f.HostPM = make([]int, nVM)
	} else {
		f.HostPM = f.HostPM[:nVM]
	}
	for i := 0; i < nPM; i++ {
		f.PM[i] = pmFlat[i*PMFeatDim : (i+1)*PMFeatDim : (i+1)*PMFeatDim]
	}
	for v := 0; v < nVM; v++ {
		f.VM[v] = vmFlat[v*VMFeatDim : (v+1)*VMFeatDim : (v+1)*VMFeatDim]
	}
}

// pmRaw fills an 8-feature row for one PM: per NUMA, free CPU, free memory,
// 16-core fragment, and fragment share of free CPU. Non-Up PMs (draining or
// down) report zero spare capacity and zero fragment: to the policy they
// look exactly like full machines, so no probability mass lands on
// destinations the placement layer (CanHost) would reject anyway.
func pmRaw(p *cluster.PM, row []float64) {
	if p.Health != cluster.Up {
		for j := range row {
			row[j] = 0
		}
		return
	}
	for j := 0; j < cluster.NumasPerPM; j++ {
		n := &p.Numas[j]
		free := n.FreeCPU()
		frag := n.Fragment(cluster.DefaultFragCores)
		share := 0.0
		if free > 0 {
			share = float64(frag) / float64(free)
		}
		row[4*j+0] = float64(free)
		row[4*j+1] = float64(n.FreeMem())
		row[4*j+2] = float64(frag)
		row[4*j+3] = share
	}
}

// Extract builds the state features for the current cluster of the
// environment. Each feature dimension is min-max normalized across machines
// (paper section 3.1); constant dimensions become zero.
func Extract(c *cluster.Cluster) *Features {
	f := &Features{}
	ExtractInto(f, c)
	return f
}

// ExtractInto recomputes the features for c into f, reusing f's buffers.
// Steady-state re-extraction (same cluster shape) performs zero allocations;
// this is the per-step path of policy rollouts.
func ExtractInto(f *Features, c *cluster.Cluster) {
	f.reshape(len(c.PMs), len(c.VMs))
	f.fill(c)
}

// fill computes the feature rows for c into f's already-shaped (and zeroed)
// headers. Per-column normalization spans only this environment's machines,
// so filling into a batch slot is bit-identical to a standalone extraction.
func (f *Features) fill(c *cluster.Cluster) {
	f.rawValid = false // normalized in place below; the raw cache goes stale
	for i := range c.PMs {
		pmRaw(&c.PMs[i], f.PM[i])
	}
	for v := range c.VMs {
		vm := &c.VMs[v]
		row := f.VM[v] // zeroed by reshape
		f.HostPM[v] = vm.PM
		// Requested cpu/mem per NUMA; zeros pad the unused NUMA slot of
		// single-NUMA VMs (paper section 3.1).
		row[0] = float64(vm.CPUPerNuma())
		row[1] = float64(vm.MemPerNuma())
		if vm.Numas == 2 {
			row[2] = float64(vm.CPUPerNuma())
			row[3] = float64(vm.MemPerNuma())
		}
		if vm.Placed() {
			p := &c.PMs[vm.PM]
			// Fragment delta on each source NUMA if this VM were removed.
			for j := 0; j < cluster.NumasPerPM; j++ {
				n := p.Numas[j]
				occupies := vm.Numas == 2 || vm.Numa == j
				if !occupies {
					continue
				}
				before := n.Fragment(cluster.DefaultFragCores)
				after := (n.FreeCPU() + vm.CPUPerNuma()) % cluster.DefaultFragCores
				row[4+j] = float64(after - before)
			}
			pmRaw(p, row[6:])
		}
	}
	normalize(f.PM)
	normalize(f.VM)
}

// FeatureBatch extracts the states of several environments into two stacked
// flat buffers: every environment's PM rows laid back to back in one
// (ΣnPM)×PMFeatDim block and every environment's VM rows in one
// (ΣnVM)×VMFeatDim block. The batched policy forward feeds each block to the
// embedding GEMMs as a single B-row matrix, replacing B single-environment
// matmuls with one. Envs[i] is a Features header whose rows alias the shared
// buffers, so each environment's extraction and normalization is
// bit-identical to a standalone ExtractInto. Environments may have different
// shapes (ragged batches); PMOff/VMOff carry the per-environment row
// offsets. Re-extraction at a stable batch shape performs zero allocations.
type FeatureBatch struct {
	Envs []Features
	// PMOff/VMOff are the B+1 row offsets of each environment's block within
	// the stacked PM / VM buffers.
	PMOff, VMOff   []int
	pmFlat, vmFlat []float64
}

// Len returns the number of environments in the batch.
func (b *FeatureBatch) Len() int { return len(b.Envs) }

// FlatPM returns all PM rows of the batch as one row-major slice.
func (b *FeatureBatch) FlatPM() []float64 { return b.pmFlat }

// FlatVM returns all VM rows of the batch as one row-major slice.
func (b *FeatureBatch) FlatVM() []float64 { return b.vmFlat }

// Extract recomputes the batch for the given clusters, reusing all storage.
func (b *FeatureBatch) Extract(cs []*cluster.Cluster) {
	n := len(cs)
	b.PMOff = resizeInts(b.PMOff, n+1)
	b.VMOff = resizeInts(b.VMOff, n+1)
	b.PMOff[0], b.VMOff[0] = 0, 0
	for i, c := range cs {
		b.PMOff[i+1] = b.PMOff[i] + len(c.PMs)
		b.VMOff[i+1] = b.VMOff[i] + len(c.VMs)
	}
	b.pmFlat = resizeZeroed(b.pmFlat, b.PMOff[n]*PMFeatDim)
	b.vmFlat = resizeZeroed(b.vmFlat, b.VMOff[n]*VMFeatDim)
	if cap(b.Envs) < n {
		grown := make([]Features, n)
		copy(grown, b.Envs) // keep warmed headers of existing slots
		b.Envs = grown
	} else {
		b.Envs = b.Envs[:n]
	}
	for i, c := range cs {
		f := &b.Envs[i]
		f.reshapeInto(len(c.PMs), len(c.VMs),
			b.pmFlat[b.PMOff[i]*PMFeatDim:b.PMOff[i+1]*PMFeatDim],
			b.vmFlat[b.VMOff[i]*VMFeatDim:b.VMOff[i+1]*VMFeatDim])
		f.fill(c)
	}
}

// resizeInts returns dst with length n, reallocating only when needed.
func resizeInts(dst []int, n int) []int {
	if cap(dst) < n {
		return make([]int, n)
	}
	return dst[:n]
}

// resizeZeroed returns dst with length n and every element zero.
func resizeZeroed(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	return dst
}

// normalize applies per-column min-max scaling in place. Its arithmetic must
// stay element-for-element identical to normalizeCaptured (features_incr.go),
// which the incremental path uses; the parity tests pin the equivalence.
func normalize(rows [][]float64) {
	if len(rows) == 0 {
		return
	}
	dim := len(rows[0])
	for col := 0; col < dim; col++ {
		lo, hi := rows[0][col], rows[0][col]
		for _, r := range rows {
			if r[col] < lo {
				lo = r[col]
			}
			if r[col] > hi {
				hi = r[col]
			}
		}
		span := hi - lo
		for _, r := range rows {
			if span == 0 {
				r[col] = 0
			} else {
				r[col] = (r[col] - lo) / span
			}
		}
	}
}
