package sim

import (
	"fmt"

	"vmr2l/internal/cluster"
)

// Swap support implements the paper's future-work extension (section 8):
// "Permitting the agent to swap multiple VMs simultaneously could simplify
// the identification of a feasible migration path." An atomic swap exchanges
// two VMs between their PMs even when neither single migration fits on its
// own, because both VMs are detached before either is re-placed. A swap
// consumes two migrations of the MNL budget (it deploys as two live
// migrations executed back-to-back).

// CanSwap reports whether vms a and b, hosted on different PMs, can be
// atomically exchanged under capacity and anti-affinity constraints.
func (e *Env) CanSwap(a, b int) bool {
	c := e.c
	if a == b || a < 0 || b < 0 || a >= len(c.VMs) || b >= len(c.VMs) {
		return false
	}
	va, vb := &c.VMs[a], &c.VMs[b]
	if !va.Placed() || !vb.Placed() || va.PM == vb.PM {
		return false
	}
	if e.cfg.MNL-e.step < 2 {
		return false
	}
	ok, undo := e.trySwap(a, b)
	if ok {
		undo()
	}
	return ok
}

// trySwap performs the swap on the live cluster, returning whether it
// succeeded and an undo function restoring the pre-swap placement. On
// failure the cluster is already restored.
func (e *Env) trySwap(a, b int) (bool, func()) {
	c := e.c
	va, vb := &c.VMs[a], &c.VMs[b]
	pmA, numaA := va.PM, va.Numa
	pmB, numaB := vb.PM, vb.Numa
	restore := func(placed ...int) {
		for _, vm := range placed {
			_ = c.Remove(vm)
		}
		if !c.VMs[a].Placed() {
			if err := c.Place(a, pmA, numaA); err != nil {
				panic(fmt.Sprintf("sim: swap rollback: %v", err))
			}
		}
		if !c.VMs[b].Placed() {
			if err := c.Place(b, pmB, numaB); err != nil {
				panic(fmt.Sprintf("sim: swap rollback: %v", err))
			}
		}
	}
	if err := c.Remove(a); err != nil {
		return false, nil
	}
	if err := c.Remove(b); err != nil {
		restore()
		return false, nil
	}
	na := c.BestNuma(a, pmB, cluster.DefaultFragCores)
	if na < 0 {
		restore()
		return false, nil
	}
	if err := c.Place(a, pmB, na); err != nil {
		restore()
		return false, nil
	}
	nb := c.BestNuma(b, pmA, cluster.DefaultFragCores)
	if nb < 0 {
		restore(a)
		return false, nil
	}
	if err := c.Place(b, pmA, nb); err != nil {
		restore(a)
		return false, nil
	}
	return true, func() { restore(a, b) }
}

// SwapGain returns the Eq. 9-style reward of swapping a and b without
// mutating observable state; ok is false when the swap is illegal.
func (e *Env) SwapGain(a, b int) (float64, bool) {
	if !e.CanSwap(a, b) {
		return 0, false
	}
	pmA, pmB := e.c.VMs[a].PM, e.c.VMs[b].PM
	before := e.cfg.Obj.pmScore(&e.c.PMs[pmA]) + e.cfg.Obj.pmScore(&e.c.PMs[pmB])
	ok, undo := e.trySwap(a, b)
	if !ok {
		return 0, false
	}
	after := e.cfg.Obj.pmScore(&e.c.PMs[pmA]) + e.cfg.Obj.pmScore(&e.c.PMs[pmB])
	undo()
	return before - after, true
}

// SwapStep atomically exchanges vms a and b, consuming two migration steps
// and returning the combined dense reward. Illegal swaps return ErrIllegal
// without mutating state.
func (e *Env) SwapStep(a, b int) (reward float64, done bool, err error) {
	if e.done {
		return 0, true, ErrDone
	}
	if a < 0 || b < 0 || a >= len(e.c.VMs) || b >= len(e.c.VMs) || a == b {
		return 0, false, fmt.Errorf("%w: swap (%d,%d)", ErrIllegal, a, b)
	}
	va, vb := &e.c.VMs[a], &e.c.VMs[b]
	if !va.Placed() || !vb.Placed() || va.PM == vb.PM || e.cfg.MNL-e.step < 2 {
		return 0, false, fmt.Errorf("%w: swap (%d,%d)", ErrIllegal, a, b)
	}
	pmA, numaA := va.PM, va.Numa
	pmB, numaB := vb.PM, vb.Numa
	before := e.cfg.Obj.pmScore(&e.c.PMs[pmA]) + e.cfg.Obj.pmScore(&e.c.PMs[pmB])
	ok, _ := e.trySwap(a, b)
	if !ok {
		return 0, false, fmt.Errorf("%w: swap (%d,%d) infeasible", ErrIllegal, a, b)
	}
	after := e.cfg.Obj.pmScore(&e.c.PMs[pmA]) + e.cfg.Obj.pmScore(&e.c.PMs[pmB])
	reward = before - after
	e.plan = append(e.plan,
		Migration{VM: a, FromPM: pmA, FromNuma: numaA, ToPM: pmB, ToNuma: e.c.VMs[a].Numa, Swap: true},
		Migration{VM: b, FromPM: pmB, FromNuma: numaB, ToPM: pmA, ToNuma: e.c.VMs[b].Numa, Swap: true},
	)
	e.step += 2
	if e.cfg.UseFRGoal {
		if e.goalReached() {
			reward += 10
			e.done = true
		} else {
			reward -= 1
		}
	}
	if e.step >= e.cfg.MNL {
		e.done = true
	}
	return reward, e.done, nil
}
