package sim

import (
	"math/rand"
	"testing"

	"vmr2l/internal/trace"
)

func benchEnv(b *testing.B) *Env {
	b.Helper()
	c := trace.MustProfile("medium-small").GenerateMapping(rand.New(rand.NewSource(1)))
	return New(c, DefaultConfig(50))
}

func BenchmarkExtractFeatures(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Extract(e.Cluster())
	}
}

func BenchmarkTopActions(b *testing.B) {
	e := benchEnv(b)
	obj := FR16()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TopActions(e.Cluster(), obj, 16)
	}
}

func BenchmarkStepAndFork(b *testing.B) {
	e := benchEnv(b)
	acts := TopActions(e.Cluster(), FR16(), 1)
	if len(acts) == 0 {
		b.Skip("no action")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := e.Fork()
		if _, _, err := f.Step(acts[0].VM, acts[0].PM); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVMMaskPMMask(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mask := e.VMMask()
		for vm, ok := range mask {
			if ok {
				_ = e.PMMask(vm)
				break
			}
		}
	}
}
