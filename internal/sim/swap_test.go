package sim

import (
	"errors"
	"math"
	"testing"

	"vmr2l/internal/cluster"
)

// deadlockCluster builds two PMs where neither VM can move alone but an
// atomic swap is feasible — the scenario motivating the paper's future-work
// swap extension.
func deadlockCluster(t *testing.T) (*cluster.Cluster, int, int) {
	t.Helper()
	c := cluster.New(2, cluster.PMType{CPUPerNuma: 16, MemPerNuma: 64})
	place := func(typ cluster.VMType, pm, numa int) int {
		id := c.AddVM(typ)
		if err := c.Place(id, pm, numa); err != nil {
			t.Fatal(err)
		}
		return id
	}
	// PM0 NUMA0: A (8 cores) + filler (6) -> 2 free.
	a := place(cluster.VMType{CPU: 8, Mem: 8, Numas: 1}, 0, 0)
	place(cluster.VMType{CPU: 6, Mem: 6, Numas: 1}, 0, 0)
	// PM1 NUMA0: B (4 cores) + filler (8) -> 4 free.
	b := place(cluster.VMType{CPU: 4, Mem: 4, Numas: 1}, 1, 0)
	place(cluster.VMType{CPU: 8, Mem: 8, Numas: 1}, 1, 0)
	// Fill second NUMAs so BestNuma cannot dodge.
	place(cluster.VMType{CPU: 16, Mem: 16, Numas: 1}, 0, 1)
	place(cluster.VMType{CPU: 16, Mem: 16, Numas: 1}, 1, 1)
	return c, a, b
}

func TestSwapFeasibleWhereSinglesAreNot(t *testing.T) {
	c, a, b := deadlockCluster(t)
	e := New(c, DefaultConfig(4))
	// Neither single migration is legal: A (8) needs more than PM1's 4
	// free; B (4) needs more than PM0's 2 free.
	if e.Cluster().CanHost(a, 1) {
		t.Fatal("A should not fit PM1 directly")
	}
	if e.Cluster().CanHost(b, 0) {
		t.Fatal("B should not fit PM0 directly")
	}
	if !e.CanSwap(a, b) {
		t.Fatal("swap should be feasible")
	}
	r, done, err := e.SwapStep(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("episode should continue (2 of 4 steps used)")
	}
	if e.StepsTaken() != 2 {
		t.Fatalf("swap consumed %d steps, want 2", e.StepsTaken())
	}
	cc := e.Cluster()
	if cc.VMs[a].PM != 1 || cc.VMs[b].PM != 0 {
		t.Fatal("VMs not exchanged")
	}
	if err := cc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Reward equals the exact 16-core fragment delta over the two PMs.
	before := float64(e.Initial().Fragment(16)) / 64
	after := float64(cc.Fragment(16)) / 64
	if math.Abs(r-(before-after)) > 1e-12 {
		t.Fatalf("swap reward %v != fragment delta %v", r, before-after)
	}
}

func TestSwapGainMatchesSwapStep(t *testing.T) {
	c, a, b := deadlockCluster(t)
	e := New(c, DefaultConfig(4))
	fr := e.FragRate()
	g, ok := e.SwapGain(a, b)
	if !ok {
		t.Fatal("SwapGain should succeed")
	}
	if e.FragRate() != fr || e.StepsTaken() != 0 {
		t.Fatal("SwapGain mutated state")
	}
	r, _, err := e.SwapStep(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-r) > 1e-12 {
		t.Fatalf("gain %v != reward %v", g, r)
	}
}

func TestSwapIllegalCases(t *testing.T) {
	c, a, b := deadlockCluster(t)
	e := New(c, DefaultConfig(4))
	if _, _, err := e.SwapStep(a, a); !errors.Is(err, ErrIllegal) {
		t.Error("self swap accepted")
	}
	if _, _, err := e.SwapStep(-1, b); !errors.Is(err, ErrIllegal) {
		t.Error("negative vm accepted")
	}
	// Same-PM swap.
	other := -1
	for i := range c.VMs {
		if i != a && c.VMs[i].PM == c.VMs[a].PM {
			other = i
			break
		}
	}
	if _, _, err := e.SwapStep(a, other); !errors.Is(err, ErrIllegal) {
		t.Error("same-PM swap accepted")
	}
	// MNL budget: with one step left, a swap must be rejected.
	e2 := New(c, DefaultConfig(1))
	if e2.CanSwap(a, b) {
		t.Error("CanSwap must respect remaining budget")
	}
	if _, _, err := e2.SwapStep(a, b); !errors.Is(err, ErrIllegal) {
		t.Error("over-budget swap accepted")
	}
}

func TestSwapPlanReplaysAtomically(t *testing.T) {
	c, a, b := deadlockCluster(t)
	e := New(c, DefaultConfig(4))
	if _, _, err := e.SwapStep(a, b); err != nil {
		t.Fatal(err)
	}
	plan := e.Plan()
	if len(plan) != 2 || !plan[0].Swap || !plan[1].Swap {
		t.Fatalf("swap plan malformed: %+v", plan)
	}
	fresh := c.Clone()
	applied, skipped := ApplyPlan(fresh, plan)
	if applied != 2 || skipped != 0 {
		t.Fatalf("replay: applied %d skipped %d", applied, skipped)
	}
	if fresh.VMs[a].PM != 1 || fresh.VMs[b].PM != 0 {
		t.Fatal("replayed swap did not exchange VMs")
	}
	if err := fresh.Validate(); err != nil {
		t.Fatal(err)
	}
	// If one VM exited meanwhile, the whole pair is skipped (atomicity).
	gone := c.Clone()
	if err := gone.Remove(a); err != nil {
		t.Fatal(err)
	}
	applied, skipped = ApplyPlan(gone, plan)
	if applied != 0 || skipped != 2 {
		t.Fatalf("stale replay: applied %d skipped %d, want 0/2", applied, skipped)
	}
	if gone.VMs[b].PM != 1 {
		t.Fatal("partial swap applied")
	}
}

func TestSwapRollbackLeavesStateIntact(t *testing.T) {
	// Construct a swap that fails at the last placement: B cannot return to
	// PM0 because even with A gone there is not enough memory.
	c := cluster.New(2, cluster.PMType{CPUPerNuma: 16, MemPerNuma: 16})
	a := c.AddVM(cluster.VMType{CPU: 8, Mem: 2, Numas: 1})
	if err := c.Place(a, 0, 0); err != nil {
		t.Fatal(err)
	}
	filler := c.AddVM(cluster.VMType{CPU: 2, Mem: 14, Numas: 1})
	if err := c.Place(filler, 0, 0); err != nil {
		t.Fatal(err)
	}
	b := c.AddVM(cluster.VMType{CPU: 4, Mem: 8, Numas: 1})
	if err := c.Place(b, 1, 0); err != nil {
		t.Fatal(err)
	}
	// Fill second NUMAs.
	for pm := 0; pm < 2; pm++ {
		id := c.AddVM(cluster.VMType{CPU: 16, Mem: 16, Numas: 1})
		if err := c.Place(id, pm, 1); err != nil {
			t.Fatal(err)
		}
	}
	e := New(c, DefaultConfig(4))
	// PM0 NUMA0 after removing A: cpu 14 free but mem only 2+2=4... B needs
	// mem 8 -> infeasible; swap must fail and leave everything unchanged.
	if e.CanSwap(a, b) {
		t.Skip("construction no longer infeasible")
	}
	if _, _, err := e.SwapStep(a, b); !errors.Is(err, ErrIllegal) {
		t.Fatalf("expected ErrIllegal, got %v", err)
	}
	if e.Cluster().VMs[a].PM != 0 || e.Cluster().VMs[b].PM != 1 {
		t.Fatal("failed swap moved VMs")
	}
	if err := e.Cluster().Validate(); err != nil {
		t.Fatal(err)
	}
	if e.StepsTaken() != 0 {
		t.Fatal("failed swap consumed steps")
	}
}
