module vmr2l

go 1.24
