// Dynamic: why VMR inference must finish in seconds (paper section 2.2,
// Fig. 5). A near-optimal plan is computed from a snapshot; meanwhile the
// cluster keeps serving VM arrivals and exits through the best-fit VMS
// scheduler. The longer the solver takes, the more plan actions become
// infeasible and the worse the achieved fragment rate. Also prints the
// live-migration cost of the deployed plan (pre-copy rounds, downtime).
//
//	go run ./examples/dynamic
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"vmr2l/internal/cluster"
	"vmr2l/internal/exact"
	"vmr2l/internal/migrate"
	"vmr2l/internal/sched"
	"vmr2l/internal/sim"
	"vmr2l/internal/solver"
	"vmr2l/internal/trace"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(9))
	profile := trace.MustProfile("tiny")
	snapshot := profile.GenerateFragmented(rng, 0.15, 20)
	fmt.Printf("snapshot: %d PMs, %d VMs, FR %.4f\n",
		len(snapshot.PMs), len(snapshot.VMs), snapshot.FragRate(16))

	// Compute a near-optimal plan from the snapshot (the "MIP" role),
	// bounded by the five-second budget the rest of the example motivates.
	s := &exact.Solver{Beam: 6, AllowLoss: true, MaxNodes: 60000}
	env := sim.New(snapshot, sim.DefaultConfig(6))
	ctx, cancel := context.WithTimeout(context.Background(), solver.FiveSecondLimit)
	defer cancel()
	if err := s.Solve(ctx, env); err != nil {
		log.Fatal(err)
	}
	plan := env.Plan()
	fmt.Printf("plan: %d migrations, would reach FR %.4f if deployed instantly\n\n",
		len(plan), env.FragRate())

	// Deploy the same plan after increasing amounts of churn.
	var mix []cluster.VMType
	for _, tw := range profile.VMMix {
		mix = append(mix, tw.Type)
	}
	fmt.Printf("%-10s %-12s %-9s %-9s\n", "delay", "achieved FR", "applied", "skipped")
	for _, delaySec := range []int{0, 2, 5, 15, 60, 300} {
		evolved := snapshot.Clone()
		churn := rand.New(rand.NewSource(int64(delaySec) + 100))
		// ~0.5 VM events per second of solver delay.
		for i := 0; i < delaySec/2; i++ {
			ev := sched.Event{Arrive: churn.Float64() < 0.5, Type: mix[churn.Intn(len(mix))]}
			sched.Replay(evolved, []sched.Event{ev}, churn)
		}
		applied, skipped := sim.ApplyPlan(evolved, plan)
		fmt.Printf("%-10s %-12.4f %-9d %-9d\n",
			fmt.Sprintf("%ds", delaySec), evolved.FragRate(16), applied, skipped)
	}

	// Live-migration cost of the full plan (paper section 1: pre-copy with
	// dirty-page tracking; only memory moves under compute-storage
	// separation).
	model := migrate.DefaultModel()
	total, downtime, copied := migrate.PlanCost(snapshot, plan, model)
	fmt.Printf("\nlive-migration cost of the plan (%.0f MB/s link, %.0f MB/s dirty rate):\n",
		model.BandwidthMBps, model.DirtyRateMBps)
	fmt.Printf("  total copy time %v, guest downtime %v, %.0f MB moved\n",
		total.Round(1000000), downtime.Round(1000), copied)
	for i, m := range plan {
		est := model.Estimate(snapshot.VMs[m.VM].Mem)
		fmt.Printf("  migration %d: vm%d (%d GB) pm%d->pm%d: %d pre-copy rounds, %v total, %v pause\n",
			i+1, m.VM, snapshot.VMs[m.VM].Mem, m.FromPM, m.ToPM,
			est.Rounds, est.Duration.Round(1000000), est.Downtime.Round(1000))
	}
}
