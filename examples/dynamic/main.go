// Dynamic: why VMR inference must finish in seconds (paper section 2.2,
// Fig. 5) — now told through the live cluster-session API. A session
// registered from the "diurnal" scenario keeps serving VM arrivals and
// exits through the best-fit VMS scheduler while a reschedule job solves on
// a snapshot; when the solve lands, the server validates and repairs the
// plan against the drifted session. The longer the cluster churns during
// the solve, the fewer plan actions survive as-is — the repair report
// (valid/repaired/dropped) quantifies exactly what staleness costs. Also
// prints the live-migration cost of the final deployed plan (pre-copy
// rounds, downtime).
//
//	go run ./examples/dynamic
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"time"

	"vmr2l/internal/client"
	"vmr2l/internal/cluster"
	"vmr2l/internal/exact"
	"vmr2l/internal/migrate"
	"vmr2l/internal/scenario"
	"vmr2l/internal/service"
	"vmr2l/internal/sim"
)

func main() {
	log.SetFlags(0)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// In-process server: an unbounded exact search throttled to a ~300 ms
	// budget plays the "slow near-optimal solver" whose plans go stale (its
	// anytime contract leaves the best partial plan when the budget ends).
	srv := service.New(
		service.WithWorkers(2),
		service.WithSolverTimeout("bnb", 300*time.Millisecond),
	)
	defer srv.Close()
	srv.Register("bnb", &exact.Solver{Beam: 6, AllowLoss: true})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := client.New(ts.URL, client.WithPollInterval(5*time.Millisecond))

	fmt.Println("plan repair vs. simulated churn during a ~300ms solve (scenario: diurnal, same seed):")
	fmt.Printf("%-10s %-7s %-6s %-9s %-8s %-13s %-12s\n",
		"churn", "plan", "valid", "repaired", "dropped", "snapshot FR", "live FR")

	var lastPlan *service.PlanResponse
	for _, minutes := range []int{0, 2, 5, 15, 60, 180} {
		// A fresh session from the same scenario seed reproduces the same
		// initial cluster, so rows differ only in how much churn the solve
		// overlaps with.
		sess, _, err := cl.CreateSession(ctx, service.SessionRequest{Scenario: "diurnal", Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		jobID, err := sess.Submit(ctx, service.PlanRequest{MNL: 10, Solver: "bnb"})
		if err != nil {
			log.Fatal(err)
		}
		// While the job is solving on its snapshot, the session lives on.
		if minutes > 0 {
			if _, err := sess.Advance(ctx, minutes); err != nil {
				log.Fatal(err)
			}
		}
		job, err := cl.Wait(ctx, jobID)
		if err != nil {
			log.Fatal(err)
		}
		res := job.Result
		rep := res.Repair
		fmt.Printf("%-10s %-7d %-6d %-9d %-8d %.4f->%.4f %.4f->%.4f\n",
			fmt.Sprintf("%dmin", minutes), res.Steps, rep.Valid, rep.Repaired, rep.Dropped,
			res.InitialFR, res.FinalFR, rep.LiveInitialFR, rep.LiveFinalFR)
		if minutes == 0 {
			lastPlan = res
		}
		if err := sess.Close(ctx); err != nil {
			log.Fatal(err)
		}
	}

	// Live-migration cost of the undrifted plan (paper section 1: pre-copy
	// with dirty-page tracking; only memory moves under compute-storage
	// separation). Rebuild the scenario cluster locally for VM sizes.
	snapshot := mustBuildDiurnal()
	model := migrate.DefaultModel()
	var plan []sim.Migration
	for _, m := range lastPlan.Plan {
		plan = append(plan, sim.Migration{VM: m.VM, FromPM: m.FromPM, ToPM: m.ToPM, Swap: m.Swap})
	}
	total, downtime, copied := migrate.PlanCost(snapshot, plan, model)
	fmt.Printf("\nlive-migration cost of the 0-churn plan (%.0f MB/s link, %.0f MB/s dirty rate):\n",
		model.BandwidthMBps, model.DirtyRateMBps)
	fmt.Printf("  total copy time %v, guest downtime %v, %.0f MB moved\n",
		total.Round(time.Millisecond), downtime.Round(time.Microsecond), copied)
	for _, m := range plan {
		est := model.Estimate(snapshot.VMs[m.VM].Mem)
		fmt.Printf("  vm%-4d (%2d GB) pm%d->pm%d: %d pre-copy rounds, %v total, %v pause\n",
			m.VM, snapshot.VMs[m.VM].Mem, m.FromPM, m.ToPM,
			est.Rounds, est.Duration.Round(time.Millisecond), est.Downtime.Round(time.Microsecond))
	}
}

// mustBuildDiurnal rebuilds the diurnal scenario's initial cluster with the
// example's seed (the server built the identical one for the sessions).
func mustBuildDiurnal() *cluster.Cluster {
	c, err := scenario.MustGet("diurnal").Build(rand.New(rand.NewSource(7)))
	if err != nil {
		log.Fatal(err)
	}
	return c
}
