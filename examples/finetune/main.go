// Finetune: adapting a trained agent to a different cluster (paper section
// 7, "Adapting to New data"). A VMR2L agent trained on one workload is
// warm-started on a new cluster profile with its attention trunk frozen, so
// only the embedding networks and heads adapt — the "top-layer finetuning"
// recipe, at a fraction of full training cost. Also demonstrates
// risk-seeking training (section 8 future work): only above-quantile
// episodes contribute gradient.
//
//	go run ./examples/finetune
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"vmr2l/internal/cluster"
	"vmr2l/internal/policy"
	"vmr2l/internal/rl"
	"vmr2l/internal/sim"
	"vmr2l/internal/trace"
)

func maps(profile string, n int, seed int64) []*cluster.Cluster {
	rng := rand.New(rand.NewSource(seed))
	p := trace.MustProfile(profile)
	out := make([]*cluster.Cluster, n)
	for i := range out {
		out[i] = p.GenerateFragmented(rng, 0.12, 12)
	}
	return out
}

func main() {
	log.SetFlags(0)
	cfg := policy.Config{
		DModel: 16, Hidden: 32, Blocks: 1,
		Extractor: policy.SparseAttention, Action: policy.TwoStage, Seed: 1,
	}
	envCfg := sim.DefaultConfig(5)

	// Phase 1: pretrain on the source cluster with risk-seeking PPO.
	source := maps("tiny", 6, 1)
	pre := policy.New(cfg)
	tc := rl.DefaultConfig()
	tc.RolloutSteps = 64
	tc.LR = 1e-3
	tc.RiskQuantile = 0.25 // drop the worst quarter of episodes
	fmt.Println("pretraining on source cluster (12 risk-seeking PPO updates)...")
	if _, err := rl.NewTrainer(pre, tc).Train(source, envCfg, 12, nil); err != nil {
		log.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := pre.Params.Save(&ckpt); err != nil {
		log.Fatal(err)
	}

	// Phase 2: adapt to the multi-resource cluster (different PM flavors,
	// memory-heavy VMs) with the attention trunk frozen.
	target := maps("multi-resource-small", 4, 2)
	heldOut := maps("multi-resource-small", 2, 99)
	ft := policy.New(cfg)
	if err := ft.Params.Load(&ckpt); err != nil {
		log.Fatal(err)
	}
	frozen := ft.Params.Freeze("block0")
	fmt.Printf("warm-started; froze %d trunk tensors, tuning embeddings and heads only\n", frozen)
	before := rl.EvalFR(ft, heldOut, envCfg)
	tc2 := tc
	tc2.RiskQuantile = 0
	tc2.LR = 5e-4
	if _, err := rl.NewTrainer(ft, tc2).Train(target, envCfg, 8, nil); err != nil {
		log.Fatal(err)
	}
	after := rl.EvalFR(ft, heldOut, envCfg)

	// Baseline: training from scratch on the target with the same budget.
	scratchCfg := cfg
	scratchCfg.Seed = 7
	scratch := policy.New(scratchCfg)
	if _, err := rl.NewTrainer(scratch, tc2).Train(target, envCfg, 8, nil); err != nil {
		log.Fatal(err)
	}
	scratchFR := rl.EvalFR(scratch, heldOut, envCfg)

	init := 0.0
	for _, c := range heldOut {
		init += c.FragRate(cluster.DefaultFragCores)
	}
	init /= float64(len(heldOut))
	fmt.Printf("\nheld-out multi-resource mappings (initial FR %.4f):\n", init)
	fmt.Printf("  transferred, zero-shot        %.4f\n", before)
	fmt.Printf("  fine-tuned (frozen trunk)     %.4f\n", after)
	fmt.Printf("  from scratch (same budget)    %.4f\n", scratchFR)
}
