// Affinity: rescheduling under hard service anti-affinity constraints
// (paper section 5.4, Table 2). Two VMs of the same service must never
// share a PM — e.g. primary/backup replicas, or resource-hungry VMs that
// interfere. The two-stage framework enforces this by masking conflicting
// PMs in stage 2, so the agent never proposes an illegal migration.
//
//	go run ./examples/affinity
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"vmr2l/internal/cluster"
	"vmr2l/internal/heuristics"
	"vmr2l/internal/policy"
	"vmr2l/internal/rl"
	"vmr2l/internal/sim"
	"vmr2l/internal/solver"
	"vmr2l/internal/trace"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(11))
	profile := trace.MustProfile("tiny")
	ctx := context.Background()

	for _, level := range []int{0, 2, 8} {
		mapping := profile.GenerateFragmented(rng, 0.15, 20)
		ratio := trace.AttachAffinity(mapping, level, rng)
		fmt.Printf("affinity level %d: ratio %.2f%% (mean fraction of VMs a VM conflicts with)\n",
			level, 100*ratio)

		envCfg := sim.DefaultConfig(6)
		// HA respects the constraint through the shared legality checks.
		haRes, err := solver.Evaluate(ctx, heuristics.HA{}, mapping, envCfg)
		if err != nil {
			log.Fatal(err)
		}

		// A (briefly trained) VMR2L agent on the constrained cluster.
		train := make([]*cluster.Cluster, 3)
		for i := range train {
			train[i] = profile.GenerateFragmented(rng, 0.15, 20)
			trace.AttachAffinity(train[i], level, rng)
		}
		model := policy.New(policy.Config{
			DModel: 16, Hidden: 32, Blocks: 1,
			Extractor: policy.SparseAttention, Action: policy.TwoStage, Seed: int64(level),
		})
		cfg := rl.DefaultConfig()
		cfg.RolloutSteps = 32
		cfg.LR = 1e-3
		if _, err := rl.NewTrainer(model, cfg).Train(train, envCfg, 6, nil); err != nil {
			log.Fatal(err)
		}
		agent := &policy.Agent{Model: model, Opts: policy.SampleOpts{Greedy: true}}
		rlRes, err := solver.Evaluate(ctx, agent, mapping, envCfg)
		if err != nil {
			log.Fatal(err)
		}

		// Verify the hard constraint held through every migration.
		replay := mapping.Clone()
		if _, skipped := sim.ApplyPlan(replay, rlRes.Plan); skipped != 0 {
			log.Fatalf("plan replay skipped %d migrations", skipped)
		}
		if err := replay.Validate(); err != nil {
			log.Fatalf("anti-affinity violated: %v", err)
		}
		fmt.Printf("  HA    FR %.4f -> %.4f\n", haRes.InitialFR, haRes.FinalFR)
		fmt.Printf("  VMR2L FR %.4f -> %.4f (all %d migrations legal)\n\n",
			rlRes.InitialFR, rlRes.FinalFR, rlRes.Steps)
	}
}
