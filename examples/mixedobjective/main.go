// Mixedobjective: optimizing a convex combination of fragment rates
// (paper section 5.5, Tables 3-4). A cluster may care about 64-core VMs or
// 64-GB memory chunks in addition to the default 16-core CPU fragments;
// the objective Obj_λ = λ·secondary + (1-λ)·FR16 trades them off.
//
//	go run ./examples/mixedobjective
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"vmr2l/internal/cluster"
	"vmr2l/internal/heuristics"
	"vmr2l/internal/sim"
	"vmr2l/internal/solver"
	"vmr2l/internal/trace"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	// The Multi-Resource profile has two PM flavors and CPU:Mem ratios up
	// to 1:8 — the setting where multi-dimensional objectives matter.
	profile := trace.MustProfile("multi-resource-small")
	mapping := profile.GenerateMapping(rng)
	fmt.Printf("cluster: %d PMs, %d VMs\n", len(mapping.PMs), len(mapping.VMs))
	fmt.Printf("initial: FR16 %.4f  FR64 %.4f  Mem64 %.4f\n\n",
		mapping.FragRate(16), mapping.FragRate(64), mapping.MemFragRate(64))

	show := func(name string, mk func(lambda float64) sim.Objective, sec func(c *cluster.Cluster) float64) {
		fmt.Printf("%s\n%-8s %-10s %-10s %-10s\n", name, "lambda", "FR16", "secondary", "objective")
		for _, lambda := range []float64{0, 0.5, 1} {
			obj := mk(lambda)
			cfg := sim.Config{MNL: 8, Obj: obj}
			res, err := solver.Evaluate(ctx, heuristics.HA{}, mapping, cfg)
			if err != nil {
				log.Fatal(err)
			}
			final := mapping.Clone()
			if _, skipped := sim.ApplyPlan(final, res.Plan); skipped != 0 {
				log.Fatal("plan replay skipped migrations")
			}
			fmt.Printf("%-8.1f %-10.4f %-10.4f %-10.4f\n",
				lambda, final.FragRate(16), sec(final), obj.Value(final))
		}
		fmt.Println()
	}
	show("mixed objective (i): lambda*FR64 + (1-lambda)*FR16",
		sim.MixedVMType, func(c *cluster.Cluster) float64 { return c.FragRate(64) })
	show("mixed objective (ii): lambda*Mem64 + (1-lambda)*FR16",
		sim.MixedResource, func(c *cluster.Cluster) float64 { return c.MemFragRate(64) })

	// The FR-goal objective (section 5.5.1): minimize migrations to reach a
	// target FR instead of minimizing FR under a migration budget.
	goal := mapping.FragRate(16) * 0.8
	cfg := sim.Config{MNL: 12, Obj: sim.FR16(), UseFRGoal: true, FRGoal: goal}
	res, err := solver.Evaluate(ctx, heuristics.HA{}, mapping, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FR goal %.4f: reached FR %.4f using %d migrations (episode ends at goal)\n",
		goal, res.FinalFR, res.Steps)
}
