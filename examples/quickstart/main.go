// Quickstart: build a small cluster, measure its fragment rate, train a
// tiny VMR2L agent for a few PPO updates, and compare it against the
// production heuristic. This is the five-minute tour of the library.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"vmr2l/internal/cluster"
	"vmr2l/internal/eval"
	"vmr2l/internal/heuristics"
	"vmr2l/internal/policy"
	"vmr2l/internal/rl"
	"vmr2l/internal/sim"
	"vmr2l/internal/solver"
	"vmr2l/internal/trace"
)

func main() {
	log.SetFlags(0)
	// 1. Synthesize a small cluster mapping: PMs with two NUMAs each, VMs
	//    from the paper's Table 1 flavors, fragmented by churn.
	rng := rand.New(rand.NewSource(28))
	profile := trace.MustProfile("tiny")
	mapping := profile.GenerateMapping(rng)
	fmt.Printf("cluster: %d PMs, %d VMs, 16-core fragment rate %.4f\n",
		len(mapping.PMs), len(mapping.VMs), mapping.FragRate(cluster.DefaultFragCores))

	// 2. The rescheduling environment: an episode is MNL migration steps.
	// Each solve runs under its own context carrying the paper's five-second
	// latency budget.
	const mnl = 6
	envCfg := sim.DefaultConfig(mnl)
	budget := func() (context.Context, context.CancelFunc) {
		return context.WithTimeout(context.Background(), solver.FiveSecondLimit)
	}

	// 3. Baseline: the filtering+scoring heuristic used in production.
	haCtx, haCancel := budget()
	haRes, err := solver.Evaluate(haCtx, heuristics.HA{}, mapping, envCfg)
	haCancel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HA:    FR %.4f -> %.4f in %d migrations (%s)\n",
		haRes.InitialFR, haRes.FinalFR, haRes.Steps, haRes.Elapsed.Round(1000))

	// 4. Train a small VMR2L agent with PPO on a handful of mappings.
	train := make([]*cluster.Cluster, 4)
	for i := range train {
		train[i] = profile.GenerateMapping(rng)
	}
	model := policy.New(policy.Config{
		DModel: 16, Hidden: 32, Blocks: 1,
		Extractor: policy.SparseAttention, Action: policy.TwoStage, Seed: 7,
	})
	trainCfg := rl.DefaultConfig()
	trainCfg.RolloutSteps = 48
	trainCfg.LR = 1e-3
	trainer := rl.NewTrainer(model, trainCfg)
	fmt.Println("training VMR2L (25 PPO updates)...")
	if _, err := trainer.Train(train, envCfg, 25, nil); err != nil {
		log.Fatal(err)
	}

	// 5. Deploy greedily on the held-out mapping (a fresh budget: training
	//    time must not eat into inference time).
	agent := &policy.Agent{Model: model, Opts: policy.SampleOpts{Greedy: true}, EarlyStop: true}
	rlCtx, rlCancel := budget()
	rlRes, err := solver.Evaluate(rlCtx, agent, mapping, envCfg)
	rlCancel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VMR2L: FR %.4f -> %.4f in %d migrations (%s)\n",
		rlRes.InitialFR, rlRes.FinalFR, rlRes.Steps, rlRes.Elapsed.Round(1000))

	// 6. Risk-seeking evaluation: sample several trajectories in the
	//    deterministic simulator and deploy only the best (section 3.4).
	out := eval.Run(model, mapping, envCfg, eval.Options{Trajectories: 16, Seed: 9, Parallel: true})
	fmt.Printf("VMR2L risk-seeking (K=16): FR %.4f -> %.4f\n", rlRes.InitialFR, out.BestValue)
	fmt.Println("best plan:")
	for _, m := range out.BestPlan {
		fmt.Printf("  move vm%d: pm%d -> pm%d\n", m.VM, m.FromPM, m.ToPM)
	}
}
