// Rescheduler: the paper's headline comparison in miniature. Runs every
// solver family — heuristic (HA, α-VBPP), exact (B&B), approximate (POP),
// search (MCTS), and learned (VMR2L with risk-seeking evaluation) — on the
// same mappings and prints an FR/latency table, the workload of Fig. 9.
//
//	go run ./examples/rescheduler
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"vmr2l/internal/cluster"
	"vmr2l/internal/eval"
	"vmr2l/internal/exact"
	"vmr2l/internal/heuristics"
	"vmr2l/internal/mcts"
	"vmr2l/internal/policy"
	"vmr2l/internal/rl"
	"vmr2l/internal/sim"
	"vmr2l/internal/solver"
	"vmr2l/internal/trace"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(7))
	profile := trace.MustProfile("tiny")
	const mnl = 6
	envCfg := sim.DefaultConfig(mnl)

	train := make([]*cluster.Cluster, 4)
	for i := range train {
		train[i] = profile.GenerateFragmented(rng, 0.15, 20)
	}
	test := make([]*cluster.Cluster, 3)
	for i := range test {
		test[i] = profile.GenerateFragmented(rng, 0.15, 20)
	}

	model := policy.New(policy.Config{
		DModel: 16, Hidden: 32, Blocks: 1,
		Extractor: policy.SparseAttention, Action: policy.TwoStage, Seed: 1,
	})
	trainCfg := rl.DefaultConfig()
	trainCfg.RolloutSteps = 48
	trainCfg.LR = 1e-3
	fmt.Println("training VMR2L (12 PPO updates)...")
	if _, err := rl.NewTrainer(model, trainCfg).Train(train, envCfg, 12, nil); err != nil {
		log.Fatal(err)
	}

	solvers := []solver.Solver{
		heuristics.HA{},
		heuristics.VBPP{Alpha: 4},
		&exact.Solver{Beam: 6, AllowLoss: true, MaxNodes: 40000},
		exact.POP{Parts: 3, Seed: 1, Inner: exact.Solver{Beam: 4, AllowLoss: true, MaxNodes: 40000}},
		&mcts.Solver{Iterations: 64, Width: 6, Seed: 1},
		&policy.Agent{Model: model, Opts: policy.SampleOpts{Greedy: true}, Label: "VMR2L"},
	}
	initFR := 0.0
	for _, c := range test {
		initFR += c.FragRate(cluster.DefaultFragCores)
	}
	fmt.Printf("\n%-22s %8s %12s\n", "method", "FR", "time/mapping")
	fmt.Printf("%-22s %8.4f %12s\n", "initial", initFR/float64(len(test)), "-")
	for _, s := range solvers {
		var rs []solver.Result
		for _, c := range test {
			// Each solve gets the paper's five-second budget; slower engines
			// return their anytime best-so-far plan at the deadline.
			ctx, cancel := context.WithTimeout(context.Background(), solver.FiveSecondLimit)
			r, err := solver.Evaluate(ctx, s, c, envCfg)
			cancel()
			if err != nil {
				log.Fatal(err)
			}
			rs = append(rs, r)
		}
		fr, _, _, elapsed := solver.Mean(rs)
		fmt.Printf("%-22s %8.4f %12s\n", s.Meta().Name, fr, elapsed.Round(time.Microsecond))
	}

	// Risk-seeking evaluation: sample 8 trajectories, deploy the best.
	total := 0.0
	start := time.Now()
	for i, c := range test {
		out := eval.Run(model, c, envCfg, eval.Options{Trajectories: 8, Seed: int64(i), Parallel: true})
		total += out.BestValue
	}
	fmt.Printf("%-22s %8.4f %12s\n", "VMR2L risk-seek K=8", total/float64(len(test)),
		(time.Since(start) / time.Duration(len(test))).Round(time.Microsecond))
}
