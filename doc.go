// Package vmr2l is a from-scratch Go reproduction of "Towards VM
// Rescheduling Optimization Through Deep Reinforcement Learning"
// (EuroSys 2025): a cluster simulator, a Gym-style rescheduling
// environment, a pure-Go deep-RL stack, the VMR2L two-stage agent with
// sparse tree-local attention and risk-seeking evaluation, all baseline
// families from the paper's evaluation, and a benchmark harness that
// regenerates every table and figure.
//
// Start with README.md (layout, the context-aware solver contract, and the
// v2 HTTP API with its Go client). The public entry points live under cmd/
// and examples/; the library packages are in internal/.
//
// # Live-cluster serving
//
// The deployment loop of paper Fig. 5 is first-class: internal/scenario
// declares named workload scenarios (trace profile + dynamics shape +
// constraints + objective), internal/sched.Dynamics evolves a live cluster
// through Poisson arrival/exit churn on a pull-based minute clock, and the
// service hosts cluster sessions (POST /v2/clusters) whose reschedule jobs
// solve on snapshots and then validate/repair their plans against the
// drifted live state (internal/solver.ValidatePlan/RepairPlan). See
// README.md's "Live-cluster serving & scenarios".
//
// # Scaling out
//
// internal/shard is the scale-out solving layer for fleet-sized inputs
// (the hyperscale scenarios: 10k PMs, ~90k VMs): shard.Partition splits
// the PMs into balanced parts while keeping every anti-affinity service
// group inside one shard (groups larger than a shard's capacity are split
// — safe, since anti-affinity is per-PM and every VM on a shard's PMs is
// in its sub-cluster, but counted as oversized_groups); cluster.ExtractSub
// produces independent sub-clusters with id remap tables; shard.Solve
// races a portfolio of engines per shard in parallel under one shared
// deadline, keeps each shard's best anytime plan, and merges the remapped
// plans through solver.ValidatePlan + RepairPlanObjective against the full
// live cluster, so the returned plan always applies cleanly. The
// shard.Portfolio and shard.Solver wrappers register like any engine; the
// service accepts "shards"/"portfolio" on every v2 job and reports
// per-shard stats; "vmr2l-bench -shards" records the scaling sweep in
// BENCH_shard.json. See README.md's "Scaling out".
//
// # Performance
//
// The serving hot path is allocation-free in steady state: the cluster
// keeps incremental fragment/free-resource aggregates (O(1) FragRate),
// episode resets and forks restore state in place via cluster.CopyFrom,
// sim.ExtractInto refills flat feature buffers, and policy.Model.Infer
// runs the forward pass on a tensor.Arena that skips autograd entirely,
// with sparse tree attention computed block-diagonally per PM tree.
// Training shares the same cache/register-blocked matmul kernels and
// recycles minibatch graph storage (tensor.GraphPool). The microbenchmark
// suite behind BENCH_hotpath.json lives in internal/bench (run
// "vmr2l-bench -hotpath" or "go test -bench=Hotpath ."); see README.md's
// Performance section for how to read the artifact.
//
// # Batched inference
//
// Every parallel consumer of the policy network routes through one batched
// forward instead of batch-size-1 calls: sim.FeatureBatch stacks B
// environments' feature rows into flat (ΣnPM)×F / (ΣnVM)×F buffers,
// policy.InferBatch / policy.ActBatch (pooled policy.BatchInferCtx, zero
// steady-state allocations) run every row-wise network stage as one B-row
// GEMM with attention computed block-diagonally per environment
// (nn.Attention.InferSeg; tree attention concatenates per-env groups into
// one GroupedAttention pass). Per environment the batched forward is
// bit-identical to the sequential policy.Model.Infer — each kernel computes
// every output row independently — which property tests pin across action
// modes, batch sizes, and ragged batches. Consumers: rl.Config.Envs
// lock-steps N training environments per wave, rl.EvalFR batches all test
// mappings, eval.Options.Batched batches the K risk-seeking trajectories,
// mcts.Solver.Prior (any mcts.ValuePrior; mcts.CriticPrior wraps a bare
// model) scores root candidates with one batched critic pass, and shard
// solves route a single policy engine through shard.BatchSolver so all
// shards share each wave's forward. The batching win scales with
// GOMAXPROCS (stacked GEMMs cross the kernels' parallel threshold);
// "vmr2l-bench -batch" records the batch-vs-sequential sweep in
// BENCH_batch.json and "-batch-check" gates it.
//
// # Batched serving
//
// internal/serve turns the batched forward into a continuous-batching
// server: one serve.Scheduler per model owns a pooled BatchInferCtx and a
// single runner goroutine, and every concurrent consumer — v2 jobs on the
// "vmr2l" engine, sharded rollouts, "mcts-prior" critic scoring, rl eval
// rollouts — submits one row (Submit / SubmitMany, or the typed
// Infer/Act/BatchValues) and blocks until its wave executes. Rows that
// arrive while a wave runs coalesce into the next wave, so batching
// engages exactly when the server is loaded and a lone caller pays no
// added latency (Options.MaxWait, default 0, can hold a wave open for
// stragglers; Options.MaxRows, default 128, caps wave size). Results are
// bit-identical per request to the standalone paths — property-tested
// under -race across action modes and GOMAXPROCS — and cancelling a
// queued request drops only that row, never its wavemates.
// vmr2l-server wires this up behind -ckpt (knobs -wave-rows/-wave-wait;
// counters at /debug/vmr2l/serving on the -pprof listener), and
// "vmr2l-bench -load" replays concurrent greedy episodes through the
// scheduler and the per-request baseline, recording p50/p99 latency,
// steps/sec, and achieved wave sizes in BENCH_serving.json;
// "-load-check" gates step parity, the multi-core speedup bar, and drift
// against the pinned reference.
//
// # Int8 inference & portable checkpoints
//
// The inference hot path has an int8 twin: policy.Model.Quantize converts
// the large linears (embeddings, attention projections, FFNs) to
// per-output-channel symmetric int8 (tensor.QuantizeWeight), and every
// layer forward then dispatches to packed int8 GEMM kernels
// (tensor.Arena.LinearQ8) that evaluate four weights per 64-bit multiply —
// exact integer arithmetic, so the quantized forward is deterministic and
// row-independent, preserving the batched==sequential bit-parity the
// serving stack relies on. Activations, biases, norms, and the critic head
// stay float64. Checkpoints are portable and self-describing
// (nn.Params.SaveCKPT: magic + JSON manifest + raw little-endian tensors;
// dtypes f64/f32/i8), auto-detected beside the legacy gob format on every
// -ckpt flag, validated shape-by-shape before any data is read, and
// fuzz-tested to fail cleanly on corrupt input. "vmr2l-server doctor" is
// the preflight (checkpoint/shapes/engines/port; non-zero exit on
// failure), "vmr2l-train -format ckpt -int8" and "vmr2l-eval -export"
// produce quantized exports, and "vmr2l-bench -quant" records the int8
// kernel speedups (pinned >=1.5x single-core at the wide serving shapes)
// plus fragmentation-rate parity of the quantized policy across the entire
// scenario registry (mean gap <= 0.02 over 3 replicas per scenario) in
// BENCH_quant.json; "-quant-check" gates it in CI.
//
// # Incremental inference
//
// Rollout steps change one VM placement, so consecutive policy forwards
// share almost all of their work. The incremental path makes that sharing
// explicit and bit-exact: the cluster keeps a dirty journal of touched
// PM/VM ids (generation-tokened, full-dirty on bulk restores),
// sim.Features.UpdateInto re-extracts only dirty machines against cached
// raw rows — re-verifying the global min-max normalizers by fresh column
// scan, renormalizing a whole side whenever a bound moved — and
// policy.InferCtx.SetIncremental(true) caches every activation across
// Infer calls, patching only dirty rows through row-sliced kernels
// (tensor.LinearRows/LinearQ8Rows/LayerNormRows/GroupedAttentionRows,
// group-diffed tree attention via nn.InferTreeRows). Cache keys cover
// model identity, parameter version, cluster identity, and journal token;
// any mismatch or moved normalizer falls back to a full recompute into the
// same caches. Every forward is counted as a hit, miss, or fallback
// (InferCtx.IncrStats) — recomputes are never silent. internal/serve
// routes Env-carrying rollout requests through LRU-bounded per-session
// incremental contexts (Options.Incremental: Auto engages for the fully
// incremental extractor=none models) and surfaces incr_* counters at
// /debug/vmr2l/serving. "vmr2l-bench -incr" records exact-trajectory
// parity on every registry scenario (float and int8) and the single-core
// per-step speedup bars (pinned >=2x at >=1k PMs, zero steady-state
// allocations) in BENCH_incr.json; "-incr-check" gates it in CI
// (incr-smoke job).
//
// # Multi-node serving & failover
//
// Sessions survive node death: every session serializes to a
// self-describing VMR2LSS1 snapshot blob (GET/PUT
// /v2/clusters/{id}/snapshot) whose restore is bit-identical under replay —
// snapshot → restore → Advance equals the uninterrupted session, RNG
// position and pending evacuations included. internal/coord (binary:
// vmr2l-coord) spreads sessions across vmr2l-server replicas by consistent
// hashing, heartbeat-probes them through an Up/Suspect/Down lifecycle,
// keeps rev-skipped snapshots of dirty sessions, and re-homes a dead
// replica's sessions onto survivors from their last snapshots with exact
// accounting (rehomed == restored + restore_failed; 503+Retry-After while
// re-homing, 410 with a reason for anything genuinely lost). Both tiers
// serve Prometheus-text GET /metrics, and "vmr2l-server doctor -coord"
// preflights the fleet. "vmr2l-bench -fleet" is the node-level chaos gate:
// it kills a replica mid-advance under concurrent jobs and pins the
// failover accounting, byte-identical re-homed state (vs both the pre-kill
// snapshot and a failure-free twin), and full job accounting in
// BENCH_fleet.json; "-fleet-check" gates it in CI (fleet-smoke job).
package vmr2l
