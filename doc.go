// Package vmr2l is a from-scratch Go reproduction of "Towards VM
// Rescheduling Optimization Through Deep Reinforcement Learning"
// (EuroSys 2025): a cluster simulator, a Gym-style rescheduling
// environment, a pure-Go deep-RL stack, the VMR2L two-stage agent with
// sparse tree-local attention and risk-seeking evaluation, all baseline
// families from the paper's evaluation, and a benchmark harness that
// regenerates every table and figure.
//
// Start with README.md (layout, the context-aware solver contract, and the
// v2 HTTP API with its Go client). The public entry points live under cmd/
// and examples/; the library packages are in internal/.
package vmr2l
