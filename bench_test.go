// Package vmr2l_test hosts the benchmark harness that regenerates every
// table and figure of the paper (DESIGN.md section 3). Each benchmark runs
// one experiment in quick mode and reports its wall time; run
//
//	go test -bench=. -benchmem -benchtime=1x
//
// to regenerate all artifacts, or cmd/vmr2l-bench for printed reports.
package vmr2l_test

import (
	"io"
	"testing"

	"vmr2l/internal/bench"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(bench.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		rep.Fprint(io.Discard)
	}
}

// BenchmarkHotpath runs the hot-path microbenchmark suite (Step, Extract,
// Clone/Fork, policy forward, fig9 quick end-to-end) as sub-benchmarks; the
// same measurements back BENCH_hotpath.json via vmr2l-bench -hotpath.
func BenchmarkHotpath(b *testing.B) {
	for _, nb := range bench.HotpathBenchmarks() {
		b.Run(nb.Name, nb.F)
	}
}

func BenchmarkFig1ArrivalStream(b *testing.B)          { runExperiment(b, "fig1") }
func BenchmarkFig4MIPvsHA(b *testing.B)                { runExperiment(b, "fig4") }
func BenchmarkFig5InferenceTimeEffect(b *testing.B)    { runExperiment(b, "fig5") }
func BenchmarkFig9Overall(b *testing.B)                { runExperiment(b, "fig9") }
func BenchmarkFig10SparseAttention(b *testing.B)       { runExperiment(b, "fig10") }
func BenchmarkFig11VMProbDist(b *testing.B)            { runExperiment(b, "fig11") }
func BenchmarkFig12RiskSeeking(b *testing.B)           { runExperiment(b, "fig12") }
func BenchmarkFig13ConstraintModes(b *testing.B)       { runExperiment(b, "fig13") }
func BenchmarkFig14MNLGoals(b *testing.B)              { runExperiment(b, "fig14") }
func BenchmarkTable2Affinity(b *testing.B)             { runExperiment(b, "tab2") }
func BenchmarkTable3MixedVMType(b *testing.B)          { runExperiment(b, "tab3") }
func BenchmarkTable4MixedResource(b *testing.B)        { runExperiment(b, "tab4") }
func BenchmarkTable5AbnormalWorkloads(b *testing.B)    { runExperiment(b, "tab5") }
func BenchmarkFig15WorkloadCDF(b *testing.B)           { runExperiment(b, "fig15") }
func BenchmarkFig16MNLGeneralization(b *testing.B)     { runExperiment(b, "fig16") }
func BenchmarkFig17ClusterGeneralization(b *testing.B) { runExperiment(b, "fig17") }
func BenchmarkFig18Large(b *testing.B)                 { runExperiment(b, "fig18") }
func BenchmarkFig19WorkloadMNL(b *testing.B)           { runExperiment(b, "fig19") }
func BenchmarkFig20Convergence(b *testing.B)           { runExperiment(b, "fig20") }
func BenchmarkFig21CaseStudy(b *testing.B)             { runExperiment(b, "fig21") }
